package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/loadstats"
)

// Report is the BENCH_load.json shape: one scenario block per workload,
// one row per swept arrival rate, percentiles from internal/loadstats.
type Report struct {
	Benchmark  string           `json:"benchmark"`
	Mode       string           `json:"mode"` // full | smoke | gate
	Config     string           `json:"config"`
	Target     string           `json:"target"`
	Arrivals   string           `json:"arrivals"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Timestamp  time.Time        `json:"timestamp"`
	Scenarios  []ScenarioResult `json:"scenarios"`
}

// ScenarioResult is one workload's sweep.
type ScenarioResult struct {
	Name              string             `json:"name"`
	Mix               map[string]float64 `json:"mix"`
	K                 int                `json:"k,omitempty"`
	BatchSize         int                `json:"batch_size,omitempty"`
	KeyDist           string             `json:"key_dist,omitempty"`
	ZipfS             float64            `json:"zipf_s,omitempty"`
	SLOP99Ms          float64            `json:"slo_p99_ms"`
	GateRateQPS       int                `json:"gate_rate_qps"`
	MaxSustainableQPS int                `json:"max_sustainable_qps"`
	Rates             []RateRow          `json:"rates"`
}

// RateRow is one open-loop measurement window at one arrival rate.
// Latency is send-scheduled: each request's clock starts at its Poisson
// arrival time, not at the moment the generator got around to sending it,
// so a stalled server inherits the queueing delay of every request behind
// the stall instead of silently thinning the sample (coordinated
// omission).
type RateRow struct {
	RateQPS     int               `json:"rate_qps"`
	WindowMs    float64           `json:"window_ms"`
	Sent        int               `json:"sent"`
	Errors      int               `json:"errors"`
	FirstError  string            `json:"first_error,omitempty"`
	AchievedQPS float64           `json:"achieved_qps"`
	SLOMet      bool              `json:"slo_met"`
	Latency     loadstats.Summary `json:"latency"`
	// ServerRequests is the server-observed operation count for this
	// window — the /metrics request-counter delta summed across the tier
	// the client fires at. nil when the target exposes no /metrics; in an
	// error-free smoke window it must equal Sent (checkSmoke enforces it).
	ServerRequests *uint64 `json:"server_requests,omitempty"`
}

// opDraw is one scheduled operation with every random choice pre-drawn on
// the dispatcher goroutine, so the schedule is a pure function of the seed.
type opDraw func(ctx context.Context) error

// updateSeq numbers update-op node names process-wide so concurrent
// scenarios never collide on a name.
var updateSeq atomic.Uint64

// namePicker binds the scenario's anchor-popularity distribution to one
// schedule rng: uniform over the name space by default, Zipf(s) when
// key_dist = "zipf" so a hot head of anchors dominates the stream. The
// sampler lives dispatcher-side like every other draw, so the schedule
// stays a pure function of the seed regardless of distribution.
func (s *Scenario) namePicker(rng *rand.Rand, names []string) func() string {
	if s.KeyDist == keyDistZipf {
		z := rand.NewZipf(rng, s.ZipfS, 1, uint64(len(names)-1))
		return func() string { return names[z.Uint64()] }
	}
	return func() string { return names[rng.Intn(len(names))] }
}

// drawOp picks the next operation per the scenario mix and binds its
// arguments from rng (dispatcher-side, deterministic). Anchor names come
// from pickName so the scenario's key distribution applies uniformly to
// every operation type.
func drawOp(rng *rand.Rand, pickName func() string, tgt *target, sc *Scenario) opDraw {
	pick := rng.Float64() * sc.Mix.total()
	name := pickName()
	switch {
	case pick < sc.Mix.Query:
		return func(ctx context.Context) error {
			_, err := tgt.router.Query(ctx, tgt.class, name, sc.K)
			return err
		}
	case pick < sc.Mix.Query+sc.Mix.Update:
		n := updateSeq.Add(1)
		return func(ctx context.Context) error {
			added := fmt.Sprintf("load-%d", n)
			_, err := tgt.router.Update(ctx, api.UpdateRequest{
				Nodes: []api.UpdateNode{{Type: "user", Name: added}},
				Edges: []api.UpdateEdge{{U: added, V: name}},
			})
			return err
		}
	case pick < sc.Mix.Query+sc.Mix.Update+sc.Mix.Proximity:
		other := pickName()
		return func(ctx context.Context) error {
			_, err := tgt.router.Proximity(ctx, tgt.class, name, other)
			return err
		}
	default:
		batch := make([]string, sc.BatchSize)
		for i := range batch {
			batch[i] = pickName()
		}
		return func(ctx context.Context) error {
			_, err := tgt.router.QueryBatch(ctx, tgt.class, batch, sc.K)
			return err
		}
	}
}

// openLoop fires one Poisson arrival stream at rate req/s for the window
// and measures send-scheduled latency. The dispatcher never waits for a
// response: every arrival runs on its own goroutine, so a slow server
// faces the full configured rate (open loop), and a request dispatched
// late — because the server stalled or the generator fell behind — is
// charged from its scheduled arrival time.
func openLoop(ctx context.Context, tgt *target, sc *Scenario, rate int, window time.Duration, seed int64) RateRow {
	rng := rand.New(rand.NewSource(seed))
	pickName := sc.namePicker(rng, tgt.names)
	hist := loadstats.New()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var errs atomic.Int64
	var firstErr atomic.Value

	start := time.Now()
	var offset time.Duration
	sent := 0
	for {
		offset += time.Duration(rng.ExpFloat64() * float64(time.Second) / float64(rate))
		if offset > window || ctx.Err() != nil {
			break
		}
		op := drawOp(rng, pickName, tgt, sc)
		sched := start.Add(offset)
		time.Sleep(time.Until(sched))
		sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := op(ctx)
			lat := time.Since(sched)
			if err != nil {
				errs.Add(1)
				firstErr.CompareAndSwap(nil, err.Error())
				return
			}
			mu.Lock()
			hist.RecordDuration(lat)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	row := RateRow{
		RateQPS:  rate,
		WindowMs: float64(window.Milliseconds()),
		Sent:     sent,
		Errors:   int(errs.Load()),
		Latency:  hist.Summarize(),
	}
	if e, ok := firstErr.Load().(string); ok {
		row.FirstError = e
	}
	if elapsed > 0 {
		row.AchievedQPS = float64(sent) / elapsed.Seconds()
	}
	row.SLOMet = row.Errors == 0 && row.Latency.P99Ms <= float64(sc.SLOP99.Milliseconds())
	return row
}

// runScenario sweeps one scenario. In full mode every configured rate is
// measured in ascending order until the SLO breaks (open-loop queueing
// only gets worse above the knee, so higher rates are reported as beyond
// max-sustainable rather than measured); smoke and gate modes measure
// only the gate rate with the given window. Each window is preceded by a
// discarded warmup at the same rate.
func runScenario(ctx context.Context, tgt *target, sc *Scenario, def Defaults, mode string, window time.Duration) (ScenarioResult, error) {
	res := ScenarioResult{
		Name:        sc.Name,
		Mix:         sc.Mix.Map(),
		K:           sc.K,
		BatchSize:   sc.BatchSize,
		KeyDist:     sc.KeyDist,
		ZipfS:       sc.ZipfS,
		SLOP99Ms:    float64(sc.SLOP99.Milliseconds()),
		GateRateQPS: sc.GateRate,
	}
	rates := sc.Rates
	if mode != modeFull {
		rates = []int{sc.GateRate}
	}
	for _, rate := range rates {
		if def.Warmup > 0 {
			openLoop(ctx, tgt, sc, rate, def.Warmup, def.Seed+int64(rate)*7919+1)
		}
		// Scrape AFTER the warmup so its requests stay out of the delta.
		var before uint64
		scrape := len(tgt.metricsURLs) > 0
		if scrape {
			var err error
			if before, err = tgt.scrapeOpsServed(ctx); err != nil {
				return res, fmt.Errorf("scenario %q rate %d: %w", sc.Name, rate, err)
			}
		}
		row := openLoop(ctx, tgt, sc, rate, window, def.Seed+int64(rate)*7919)
		if row.Sent == 0 {
			return res, fmt.Errorf("scenario %q rate %d: nothing was sent (window too short for the rate)", sc.Name, rate)
		}
		if scrape {
			served, err := settleScrape(ctx, tgt, before+uint64(row.Sent))
			if err != nil {
				return res, fmt.Errorf("scenario %q rate %d: %w", sc.Name, rate, err)
			}
			delta := served - before
			row.ServerRequests = &delta
		}
		res.Rates = append(res.Rates, row)
		fmt.Printf("load    %-12s rate=%-5d sent=%-6d errs=%-3d p50=%7.2fms p99=%7.2fms p99.9=%7.2fms max=%7.2fms%s%s\n",
			sc.Name, rate, row.Sent, row.Errors, row.Latency.P50Ms, row.Latency.P99Ms,
			row.Latency.P999Ms, row.Latency.MaxMs, serverMark(row), sloMark(row))
		if row.SLOMet {
			res.MaxSustainableQPS = rate
		} else if mode == modeFull {
			break
		}
	}
	return res, nil
}

func sloMark(row RateRow) string {
	if row.SLOMet {
		return ""
	}
	return "  [SLO broken]"
}

func serverMark(row RateRow) string {
	if row.ServerRequests == nil {
		return ""
	}
	return fmt.Sprintf(" server=%d", *row.ServerRequests)
}

// settleScrape re-scrapes until the server-observed count reaches want —
// the middleware increments its counter after the handler has already
// written the response, so the last few requests of a window can be
// client-complete but not yet counted — giving up after a short deadline
// (requests genuinely lost to errors never arrive).
func settleScrape(ctx context.Context, tgt *target, want uint64) (uint64, error) {
	served, err := tgt.scrapeOpsServed(ctx)
	for deadline := time.Now().Add(2 * time.Second); err == nil && served < want && time.Now().Before(deadline); {
		time.Sleep(25 * time.Millisecond)
		served, err = tgt.scrapeOpsServed(ctx)
	}
	return served, err
}

// checkSmoke validates a smoke run's internal consistency: every scenario
// completed requests without a single error, and its percentile slate is
// monotone. It is the "did the harness and the stack actually work"
// cross-check, run without touching committed files.
func checkSmoke(rep *Report) error {
	for _, sc := range rep.Scenarios {
		for _, row := range sc.Rates {
			l := row.Latency
			switch {
			case row.Errors > 0:
				return fmt.Errorf("smoke: scenario %q rate %d: %d errors (first: %s)", sc.Name, row.RateQPS, row.Errors, row.FirstError)
			case l.Count == 0:
				return fmt.Errorf("smoke: scenario %q rate %d: no completions", sc.Name, row.RateQPS)
			case int(l.Count) != row.Sent:
				return fmt.Errorf("smoke: scenario %q rate %d: %d sent but %d measured", sc.Name, row.RateQPS, row.Sent, l.Count)
			case row.ServerRequests != nil && *row.ServerRequests != uint64(row.Sent):
				return fmt.Errorf("smoke: scenario %q rate %d: client sent %d but servers observed %d (/metrics cross-check)",
					sc.Name, row.RateQPS, row.Sent, *row.ServerRequests)
			case !(l.P50Ms <= l.P99Ms && l.P99Ms <= l.P999Ms && l.P999Ms <= l.MaxMs):
				return fmt.Errorf("smoke: scenario %q rate %d: percentiles not monotone: %+v", sc.Name, row.RateQPS, l)
			}
		}
	}
	return nil
}

// gateCheck is one scenario's baseline-vs-fresh p99 comparison.
type gateCheck struct {
	Scenario   string
	RateQPS    int
	BaseP99Ms  float64
	FreshP99Ms float64
	LimitMs    float64
	OK         bool
}

// compareGate checks a fresh gate run against the committed baseline: for
// every baseline scenario, the fresh p99 at the gate rate must stay under
// baseline_p99*mult + slack. The multiplicative term absorbs
// machine-to-machine speed differences, the additive term keeps a
// near-zero baseline from demanding sub-noise latency; both are explicit
// so a regression verdict is always explainable from the report files.
// A fresh scenario with request errors fails outright, and a baseline
// scenario missing from the fresh run fails loudly instead of silently
// shrinking the gate.
func compareGate(base, fresh *Report, mult float64, slack time.Duration) ([]gateCheck, error) {
	freshByName := map[string]*ScenarioResult{}
	for i := range fresh.Scenarios {
		freshByName[fresh.Scenarios[i].Name] = &fresh.Scenarios[i]
	}
	var checks []gateCheck
	for _, bs := range base.Scenarios {
		fs, ok := freshByName[bs.Name]
		if !ok {
			return nil, fmt.Errorf("gate: baseline scenario %q missing from the fresh run (config drifted from BENCH_load.json?)", bs.Name)
		}
		baseRow := findRate(bs.Rates, bs.GateRateQPS)
		if baseRow == nil {
			return nil, fmt.Errorf("gate: baseline scenario %q has no row at its gate rate %d — regenerate BENCH_load.json", bs.Name, bs.GateRateQPS)
		}
		freshRow := findRate(fs.Rates, bs.GateRateQPS)
		if freshRow == nil {
			return nil, fmt.Errorf("gate: fresh run of %q has no row at the baseline gate rate %d", bs.Name, bs.GateRateQPS)
		}
		c := gateCheck{
			Scenario:   bs.Name,
			RateQPS:    bs.GateRateQPS,
			BaseP99Ms:  baseRow.Latency.P99Ms,
			FreshP99Ms: freshRow.Latency.P99Ms,
			LimitMs:    baseRow.Latency.P99Ms*mult + float64(slack.Milliseconds()),
		}
		c.OK = freshRow.Errors == 0 && c.FreshP99Ms <= c.LimitMs
		checks = append(checks, c)
	}
	return checks, nil
}

func findRate(rows []RateRow, rate int) *RateRow {
	for i := range rows {
		if rows[i].RateQPS == rate {
			return &rows[i]
		}
	}
	return nil
}
