// Command semprox runs the end-to-end semantic proximity search pipeline
// on a generated dataset (or a graph file) and answers queries from the
// command line.
//
// Examples:
//
//	# Suggest coworkers for a user of the synthetic LinkedIn-like graph.
//	semprox -dataset linkedin -class coworker -query user-17 -top 5
//
//	# Same but with dual-stage training matching only 30 candidates.
//	semprox -dataset linkedin -class coworker -query user-17 -candidates 30
//
//	# Load a graph from the text format instead.
//	semprox -graph my.graph -anchor user -class friends \
//	        -labels labels.tsv -query Alice
//
// With -labels, each line of the file is "x<TAB>y" naming two nodes that
// belong to the class; training triplets are sampled from it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	semprox "repro"
	"repro/internal/dataset"
	"repro/internal/mining"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("semprox: ")
	var (
		dsName     = flag.String("dataset", "linkedin", "built-in dataset: linkedin or facebook (ignored with -graph)")
		users      = flag.Int("users", 400, "user count for built-in datasets")
		graphFile  = flag.String("graph", "", "load a graph from this text file instead of generating one")
		labelsFile = flag.String("labels", "", "tab-separated node-name pairs labeling the class (required with -graph)")
		anchor     = flag.String("anchor", "user", "object type proximity is measured between")
		class      = flag.String("class", "", "semantic class to train (default: first class of the dataset)")
		query      = flag.String("query", "", "node name to query (default: first query node of the class)")
		topK       = flag.Int("top", 10, "results to print")
		candidates = flag.Int("candidates", 0, "if >0, use dual-stage training with this many candidates")
		nExamples  = flag.Int("examples", 200, "training triplets to sample")
		maxNodes   = flag.Int("max-nodes", 4, "metagraph size cap")
		minSupport = flag.Int("min-support", 5, "MNI support threshold for mining")
		seed       = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var (
		g      *semprox.Graph
		labels semprox.Labels
		name   string
	)
	if *graphFile != "" {
		f, err := os.Open(*graphFile)
		if err != nil {
			log.Fatal(err)
		}
		g2, err := semprox.ReadGraph(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		g = g2
		if *labelsFile == "" {
			log.Fatal("-graph requires -labels")
		}
		labels = readLabels(*labelsFile, g)
		name = *graphFile
		if *class == "" {
			*class = "labeled"
		}
	} else {
		var ds *dataset.Dataset
		switch *dsName {
		case "linkedin":
			ds = dataset.LinkedIn(dataset.Config{Users: *users, Seed: *seed, NoiseRate: 0.05})
		case "facebook":
			ds = dataset.Facebook(dataset.Config{Users: *users, Seed: *seed, NoiseRate: 0.05})
		default:
			log.Fatalf("unknown dataset %q", *dsName)
		}
		g = ds.G
		name = ds.Name
		if *class == "" {
			*class = ds.ClassNames()[0]
		}
		var ok bool
		labels, ok = ds.Classes[*class]
		if !ok {
			log.Fatalf("dataset %s has no class %q (have %v)", name, *class, ds.ClassNames())
		}
	}

	fmt.Printf("graph %s: %d nodes, %d edges, %d types\n", name, g.NumNodes(), g.NumEdges(), g.NumTypes())

	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: *maxNodes, MinSupport: *minSupport}
	opts.Train.Restarts = 3
	opts.Train.MaxIters = 400

	start := time.Now()
	eng, err := semprox.NewEngine(g, *anchor, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d metagraphs in %.1fs\n", eng.NumMetagraphs(), time.Since(start).Seconds())

	queries := labels.Queries()
	if len(queries) == 0 {
		log.Fatal("class has no labeled pairs")
	}
	examples := semprox.MakeExamples(labels, queries, g.NodesOfType(g.Types().ID(*anchor)), *nExamples, *seed)
	fmt.Printf("training class %q on %d examples", *class, len(examples))

	start = time.Now()
	if *candidates > 0 {
		eng.TrainDualStage(*class, examples, *candidates)
		fmt.Printf(" (dual-stage: matched %d of %d metagraphs)", eng.MatchedCount(), eng.NumMetagraphs())
	} else {
		eng.Train(*class, examples)
	}
	fmt.Printf(" in %.1fs\n", time.Since(start).Seconds())

	q := queries[0]
	if *query != "" {
		if q = g.NodeByName(*query); q == semprox.InvalidNode {
			log.Fatalf("node %q not found", *query)
		}
	}
	results, err := eng.Query(*class, q, *topK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop %d results for %q (class %s):\n", *topK, g.Name(q), *class)
	for i, r := range results {
		mark := ""
		if labels.Has(q, r.Node) {
			mark = "  [labeled " + *class + "]"
		}
		fmt.Printf("%2d. %-20s π=%.4f%s\n", i+1, g.Name(r.Node), r.Score, mark)
	}
	if len(results) == 0 {
		fmt.Println("(no candidates share a symmetric metagraph instance with the query)")
	}
}

// readLabels parses "x<TAB>y" node-name pairs.
func readLabels(path string, g *semprox.Graph) semprox.Labels {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	labels := semprox.Labels{}
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 2 {
			log.Fatalf("%s:%d: want two tab-separated node names", path, lineNo)
		}
		x, y := g.NodeByName(parts[0]), g.NodeByName(parts[1])
		if x == semprox.InvalidNode || y == semprox.InvalidNode {
			log.Fatalf("%s:%d: unknown node in %q", path, lineNo, line)
		}
		labels.Add(x, y)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	return labels
}
