package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/fixtures"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// failoverReport is the BENCH_failover.json shape: the full failover
// cycle — synchronous primary, two durable followers with promotion
// monitors, kill the primary, measure how long until the SAME routed
// writer gets acks again — with the correctness side cross-checked every
// cycle (term raised to 2, every pre-kill acked write present on the
// promoted primary, the router's primary_change event observed).
type failoverReport struct {
	Benchmark    string    `json:"benchmark"`
	Followers    int       `json:"followers"`
	UpdatesAcked int       `json:"updates_acked_before_kill"`
	GoMaxProcs   int       `json:"gomaxprocs"`
	Reps         int       `json:"reps"`
	Timestamp    time.Time `json:"timestamp"`
	// RestoreMs: per-cycle wall time from closing the primary's listener
	// to the first routed update acked by the promoted follower. Includes
	// failure detection (monitor probes), the election, local-WAL replay,
	// the server role swap, and the router's re-resolution.
	RestoreMs    []float64 `json:"restore_ms"`
	BestMs       float64   `json:"best_ms"`
	PromotedTerm uint64    `json:"promoted_term"`
}

// benchFailover runs reps full failover cycles in-process and fails
// (exit non-zero, like every drift check here) if any cycle loses an
// acked write, promotes to the wrong term, or never restores writes.
func benchFailover(reps int) (*failoverReport, error) {
	rep := &failoverReport{
		Benchmark:  "failover_restore",
		Followers:  2,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Timestamp:  time.Now().UTC(),
	}
	for r := 0; r < reps; r++ {
		restore, acked, term, err := failoverCycle()
		if err != nil {
			return nil, fmt.Errorf("failover: cycle %d: %w", r, err)
		}
		rep.RestoreMs = append(rep.RestoreMs, float64(restore.Nanoseconds())/1e6)
		rep.UpdatesAcked = acked
		rep.PromotedTerm = term
		if rep.BestMs == 0 || rep.RestoreMs[r] < rep.BestMs {
			rep.BestMs = rep.RestoreMs[r]
		}
	}
	fmt.Printf("failover reps=%d best_restore=%7.1fms all=%v\n", reps, rep.BestMs, rep.RestoreMs)
	return rep, nil
}

// failoverCycle stands up one synchronous cluster, kills the primary and
// returns how long until writes were restored on the promoted follower.
func failoverCycle() (restore time.Duration, acked int, term uint64, err error) {
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		return 0, 0, 0, err
	}
	eng.Train("classmate", []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	})
	dir, err := os.MkdirTemp("", "bench-failover-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(dir+"/p-wal", wal.Options{})
	if err != nil {
		return 0, 0, 0, err
	}
	defer w.Close()
	srv := server.New(eng)
	srv.AttachWAL(w)
	srv.SetAckReplicas(1)
	pts := httptest.NewServer(srv)
	defer pts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two durable, promotable followers — the semproxd -state -peers kind.
	type node struct {
		f       *replica.Follower
		srv     *server.Server
		ts      *httptest.Server
		stopRun context.CancelFunc
		runDone chan error
	}
	nodes := make([]*node, 2)
	var urls []string
	for i := range nodes {
		f := replica.NewFollower(pts.URL, pts.Client())
		f.Dir = fmt.Sprintf("%s/f%d", dir, i)
		f.PollWait = 100 * time.Millisecond
		f.Backoff = 10 * time.Millisecond
		if err := f.Bootstrap(ctx); err != nil {
			return 0, 0, 0, fmt.Errorf("bootstrap follower %d: %w", i, err)
		}
		runCtx, stopRun := context.WithCancel(ctx)
		n := &node{f: f, stopRun: stopRun, runDone: make(chan error, 1)}
		go func() { n.runDone <- f.Run(runCtx) }()
		n.srv = server.New(f.Engine())
		n.srv.SetFollower(f)
		n.ts = httptest.NewServer(n.srv)
		defer n.ts.Close()
		defer f.Close() //nolint:errcheck
		nodes[i] = n
		urls = append(urls, n.ts.URL)
	}

	router := client.NewRouter(pts.URL, urls, pts.Client())
	var promotions atomic.Int64
	router.OnEvent = func(ev client.Event) {
		if ev.Type == client.EventPrimaryChange {
			promotions.Add(1)
		}
	}

	// Synchronously acked writes before the kill: each ack proves a
	// follower held the record durably, so none may be lost by failover.
	const updates = 4
	var names []string
	for i := 0; i < updates; i++ {
		name := fmt.Sprintf("pre-kill-%d", i)
		uctx, ucancel := context.WithTimeout(ctx, 30*time.Second)
		_, err := router.Update(uctx, api.UpdateRequest{
			Nodes: []api.UpdateNode{{Type: "user", Name: name}},
			Edges: []api.UpdateEdge{{U: name, V: "Kate"}},
		})
		ucancel()
		if err != nil {
			return 0, 0, 0, fmt.Errorf("pre-kill update %d: %w", i, err)
		}
		names = append(names, name)
	}
	// Let both followers reach the primary's position so the election
	// winner is fully caught up, then arm the monitors.
	deadline := time.Now().Add(30 * time.Second)
	for nodes[0].f.Status().Applied < uint64(updates) || nodes[1].f.Status().Applied < uint64(updates) {
		if time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("followers never caught up before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		go func(n *node) {
			m := &replica.Monitor{F: n.f, Self: n.ts.URL, Peers: urls,
				Interval: 20 * time.Millisecond, Threshold: 2}
			if err := m.Run(ctx); err != nil {
				return // lost the election (keeps following) or ctx ended
			}
			n.stopRun()
			<-n.runDone
			w, err := n.f.Promote()
			if err != nil {
				return
			}
			if _, _, err := semprox.ReplayWAL(n.f.Engine(), w); err != nil {
				return
			}
			if err := n.srv.Promote(w); err != nil {
				return
			}
			n.srv.SetAckReplicas(1)
		}(n)
	}

	pts.Close() // kill the primary
	t0 := time.Now()
	for {
		uctx, ucancel := context.WithTimeout(ctx, time.Second)
		_, err := router.Update(uctx, api.UpdateRequest{
			Nodes: []api.UpdateNode{{Type: "user", Name: "post-kill"}},
			Edges: []api.UpdateEdge{{U: "post-kill", V: "Kate"}},
		})
		ucancel()
		if err == nil {
			restore = time.Since(t0)
			break
		}
		if time.Since(t0) > 60*time.Second {
			return 0, 0, 0, fmt.Errorf("writes never restored after the kill: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cross-checks: the router re-resolved onto a promoted backend at
	// term 2, and every pre-kill acked write survived.
	if promotions.Load() == 0 {
		return 0, 0, 0, fmt.Errorf("no primary_change event despite a restored write")
	}
	promoted := router.Primary()
	if promoted.BaseURL() == pts.URL {
		return 0, 0, 0, fmt.Errorf("router still resolves the dead primary")
	}
	ready, err := promoted.Ready(ctx)
	if err != nil {
		return 0, 0, 0, err
	}
	if ready.Role != api.RolePrimary || ready.Term != 2 {
		return 0, 0, 0, fmt.Errorf("promoted backend readyz = %+v, want primary at term 2", ready)
	}
	for _, name := range names {
		if _, err := promoted.Query(ctx, "classmate", name, 3); err != nil {
			return 0, 0, 0, fmt.Errorf("acked pre-kill write %s lost by failover: %w", name, err)
		}
	}
	return restore, len(names), ready.Term, nil
}
