// Command bench measures the pipeline end to end and emits
// machine-readable perf trajectories:
//
//   - offline (BENCH_offline.json): mine → match → index across worker
//     counts (the dominant cost of Table III), cross-checked byte-for-byte
//     against the serial build before timings are reported.
//   - online (BENCH_online.json): the sharded top-k candidate scan behind
//     /query across worker counts, cross-checked element-for-element
//     against the serial ranking for every query first.
//   - update (BENCH_update.json): one live ApplyUpdate cycle through the
//     public engine API, plus the incremental neighborhood re-match vs a
//     full from-scratch re-match on a community-structured graph — the
//     patched index is cross-checked byte-for-byte against the scratch
//     build before timings are reported.
//   - wal (BENCH_wal.json): the durable write path — fsynced group-commit
//     appends across writer counts, in both the blocking (Append) and
//     pipelined (AppendAsync + WaitDurable) modes, cross-checked by
//     replaying the log (every record must come back, contiguous and
//     byte-identical) and by a reopen that must recover the same tail.
//   - routing (BENCH_routing.json): the routed-serving cycle — one durable
//     primary plus two real followers in-process, live updates streamed
//     through the WAL, a replica-aware client Router spreading reads —
//     cross-checked element-for-element against direct primary answers
//     before routed vs direct QPS is reported.
//   - failover (BENCH_failover.json): the failover cycle — synchronous
//     primary, two durable followers with promotion monitors, primary
//     killed under a routed writer — reporting time-to-restore-writes,
//     with every pre-kill acked write verified on the promoted primary.
//
// Any failure — a drifted index, a drifted ranking, a lost WAL record, an
// unwritable output — exits non-zero without touching the output files
// (writes are staged to a temp file and renamed), so a CI smoke step can
// gate on it.
//
// Usage:
//
//	go run ./cmd/bench [-users 200] [-reps 3] [-workers 1,2,4,8] [-k 10]
//	                   [-out BENCH_offline.json] [-online-out BENCH_online.json]
//	                   [-update-out BENCH_update.json] [-wal-out BENCH_wal.json]
//	                   [-routing-out BENCH_routing.json] [-failover-out BENCH_failover.json]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	semprox "repro"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/metagraph"
	"repro/internal/mining"
	"repro/internal/report"
	"repro/internal/wal"
)

type run struct {
	Workers int     `json:"workers"`
	BestNs  int64   `json:"best_ns"`
	BestMs  float64 `json:"best_ms"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type onlineRun struct {
	run
	NsPerQuery int64   `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
}

type offlineReport struct {
	Benchmark  string    `json:"benchmark"`
	Dataset    string    `json:"dataset"`
	Users      int       `json:"users"`
	Metagraphs int       `json:"metagraphs"`
	NumPairs   int       `json:"num_pairs"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Reps       int       `json:"reps"`
	Timestamp  time.Time `json:"timestamp"`
	Runs       []run     `json:"runs"`
}

type onlineReport struct {
	Benchmark  string      `json:"benchmark"`
	Dataset    string      `json:"dataset"`
	Users      int         `json:"users"`
	Queries    int         `json:"queries"`
	K          int         `json:"k"`
	Metagraphs int         `json:"metagraphs"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Reps       int         `json:"reps"`
	Timestamp  time.Time   `json:"timestamp"`
	Runs       []onlineRun `json:"runs"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	if err := runBench(); err != nil {
		log.Fatal(err)
	}
}

func runBench() error {
	users := flag.Int("users", 200, "LinkedIn dataset size (bench scale)")
	reps := flag.Int("reps", 3, "repetitions per worker count (best wins)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	k := flag.Int("k", 10, "top-k for the online benchmark")
	out := flag.String("out", "BENCH_offline.json", "offline output path ('-' for stdout only)")
	onlineOut := flag.String("online-out", "BENCH_online.json", "online output path ('-' for stdout only)")
	updateOut := flag.String("update-out", "BENCH_update.json", "live-update output path ('-' for stdout only)")
	walOut := flag.String("wal-out", "BENCH_wal.json", "WAL append output path ('-' for stdout only)")
	routingOut := flag.String("routing-out", "BENCH_routing.json", "routed-serving output path ('-' for stdout only)")
	failoverOut := flag.String("failover-out", "BENCH_failover.json", "failover-cycle output path ('-' for stdout only)")
	flag.Parse()

	counts, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	ds := dataset.LinkedIn(dataset.Config{Users: *users, Seed: 1, NoiseRate: 0.05})
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) == 0 {
		return fmt.Errorf("no metagraphs mined; raise -users")
	}
	newMatcher := func() match.Matcher { return match.NewSymISO(ds.G) }

	ref, offline, err := benchOffline(ds, ms, newMatcher, counts, *reps)
	if err != nil {
		return err
	}
	online, err := benchOnline(ds, ref, len(ms), counts, *reps, *k)
	if err != nil {
		return err
	}
	update, err := benchUpdate(*reps)
	if err != nil {
		return err
	}
	walRep, err := benchWAL(counts, *reps)
	if err != nil {
		return err
	}
	routing, err := benchRouting(*reps, *k)
	if err != nil {
		return err
	}
	failover, err := benchFailover(*reps)
	if err != nil {
		return err
	}
	if err := emit(*out, offline); err != nil {
		return err
	}
	if err := emit(*onlineOut, online); err != nil {
		return err
	}
	if err := emit(*updateOut, update); err != nil {
		return err
	}
	if err := emit(*walOut, walRep); err != nil {
		return err
	}
	if err := emit(*routingOut, routing); err != nil {
		return err
	}
	return emit(*failoverOut, failover)
}

// parseWorkers parses the -workers list, prepending the serial baseline
// and dropping duplicates so every row shares one baseline.
func parseWorkers(s string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers element %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 || counts[0] != 1 {
		counts = append([]int{1}, counts...)
	}
	seen := map[int]bool{}
	uniq := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	return uniq, nil
}

// benchOffline measures the parallel index build. Every worker count must
// rebuild the serial index byte-for-byte before its timings mean anything.
func benchOffline(ds *dataset.Dataset, ms []*metagraph.Metagraph, newMatcher func() match.Matcher, counts []int, reps int) (*index.Index, *offlineReport, error) {
	ref := index.BuildParallel(ms, newMatcher, 1)
	var refBuf bytes.Buffer
	if err := index.Write(&refBuf, ref); err != nil {
		return nil, nil, err
	}
	for _, w := range counts {
		var buf bytes.Buffer
		if err := index.Write(&buf, index.BuildParallel(ms, newMatcher, w)); err != nil {
			return nil, nil, err
		}
		if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
			return nil, nil, fmt.Errorf("offline: workers=%d produced a different index than the serial build", w)
		}
	}

	rep := &offlineReport{
		Benchmark:  "offline_index_build",
		Dataset:    ds.Name,
		Users:      len(ds.Users()),
		Metagraphs: len(ms),
		NumPairs:   ref.NumPairs(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Timestamp:  time.Now().UTC(),
	}
	var serialBest time.Duration
	for _, w := range counts {
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			ix := index.BuildParallel(ms, newMatcher, w)
			d := time.Since(t0)
			if ix.NumPairs() != ref.NumPairs() {
				return nil, nil, fmt.Errorf("offline: workers=%d: pair count drifted", w)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		if w == 1 {
			serialBest = best
		}
		rep.Runs = append(rep.Runs, makeRun(w, best, serialBest))
		fmt.Printf("offline workers=%-3d best=%8.2fms speedup=%.2fx\n",
			w, float64(best.Nanoseconds())/1e6, rep.Runs[len(rep.Runs)-1].Speedup)
	}
	return ref, rep, nil
}

// benchOnline measures the sharded top-k candidate scan over every
// anchor-typed node. Every worker count's ranking is first cross-checked
// element-for-element (node AND score) against the serial reference.
func benchOnline(ds *dataset.Dataset, ix *index.Index, numMeta int, counts []int, reps, k int) (*onlineReport, error) {
	w := core.UniformWeights(numMeta)
	queries := ds.Users()
	refs := make([][]core.Ranked, len(queries))
	for i, q := range queries {
		refs[i] = core.RankTop(ix, w, q, k)
	}
	for _, workers := range counts {
		for i, q := range queries {
			got := core.RankTopSharded(ix, w, q, k, workers)
			if len(got) != len(refs[i]) {
				return nil, fmt.Errorf("online: workers=%d query %d: %d results, want %d",
					workers, q, len(got), len(refs[i]))
			}
			for j := range got {
				if got[j] != refs[i][j] {
					return nil, fmt.Errorf("online: workers=%d query %d: result %d drifted (%+v vs %+v)",
						workers, q, j, got[j], refs[i][j])
				}
			}
		}
	}

	rep := &onlineReport{
		Benchmark:  "online_rank_top",
		Dataset:    ds.Name,
		Users:      len(ds.Users()),
		Queries:    len(queries),
		K:          k,
		Metagraphs: numMeta,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Timestamp:  time.Now().UTC(),
	}
	var serialBest time.Duration
	for _, workers := range counts {
		best := time.Duration(0)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			for _, q := range queries {
				core.RankTopSharded(ix, w, q, k, workers)
			}
			d := time.Since(t0)
			if best == 0 || d < best {
				best = d
			}
		}
		if workers == 1 {
			serialBest = best
		}
		or := onlineRun{
			run:        makeRun(workers, best, serialBest),
			NsPerQuery: best.Nanoseconds() / int64(len(queries)),
			QPS:        float64(len(queries)) / best.Seconds(),
		}
		rep.Runs = append(rep.Runs, or)
		fmt.Printf("online  workers=%-3d best=%8.2fms qps=%9.0f speedup=%.2fx\n",
			workers, or.BestMs, or.QPS, or.Speedup)
	}
	return rep, nil
}

// makeRun fills one timing row.
func makeRun(workers int, best, serialBest time.Duration) run {
	speedup := 0.0
	if serialBest > 0 {
		speedup = float64(serialBest) / float64(best)
	}
	return run{
		Workers: workers,
		BestNs:  best.Nanoseconds(),
		BestMs:  float64(best.Nanoseconds()) / 1e6,
		Speedup: speedup,
	}
}

// emit writes the report to path through the shared trajectory plumbing
// (internal/report): atomic temp+rename, "-" prints to stdout.
func emit(path string, rep any) error {
	return report.EmitJSON(path, rep)
}

// updateReport is the BENCH_update.json shape.
type updateReport struct {
	Benchmark     string    `json:"benchmark"`
	Communities   int       `json:"communities"`
	Nodes         int       `json:"nodes"`
	Edges         int       `json:"edges"`
	Metagraphs    int       `json:"metagraphs"`
	GoMaxProcs    int       `json:"gomaxprocs"`
	Reps          int       `json:"reps"`
	Timestamp     time.Time `json:"timestamp"`
	IncrementalNs int64     `json:"incremental_ns"`
	RebuildNs     int64     `json:"rebuild_ns"`
	Speedup       float64   `json:"speedup_vs_rebuild"`
}

// walReport is the BENCH_wal.json shape.
type walReport struct {
	Benchmark   string    `json:"benchmark"`
	RecordBytes int       `json:"record_bytes"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	Reps        int       `json:"reps"`
	Timestamp   time.Time `json:"timestamp"`
	Runs        []walRun  `json:"runs"`
}

// walRun is one (mode, writer-count) row of the WAL bench. Mode
// "blocking" is Append: every call returns only after its group's fsync,
// so per-writer latency is bounded below by the disk's sync time. Mode
// "pipelined" is AppendAsync with one WaitDurable barrier per writer:
// the stream keeps appending while the syncer fsyncs the previous batch,
// so one fsync amortizes over everything enqueued behind it. Durability
// is identical — in both modes nothing is acknowledged before its
// record's fsync completes; pipelining only moves WHERE the caller waits.
type walRun struct {
	Mode          string  `json:"mode"`
	Writers       int     `json:"writers"`
	Records       int     `json:"records"`
	BestNs        int64   `json:"best_ns"`
	NsPerAppend   int64   `json:"ns_per_append"`
	AppendsPerSec float64 `json:"appends_per_sec"`
}

// benchWAL measures fsynced group-commit appends across writer counts.
// Before any timing, the serial log is replayed and cross-checked: every
// record must come back contiguous and byte-identical to what was
// appended, and a reopen must recover the same durable position — the
// bench fails (exit non-zero) otherwise, like every other drift check
// here.
func benchWAL(counts []int, reps int) (*walReport, error) {
	mkDelta := func(i int) graph.Delta {
		return graph.Delta{
			Nodes: []graph.DeltaNode{{Type: "user", Value: fmt.Sprintf("wal-user-%d", i)}},
			Edges: []graph.Edge{{U: graph.NodeID(i), V: graph.NodeID(i + 1)}},
		}
	}
	const records = 128

	// Correctness pass: append serially, replay, reopen.
	dir, err := os.MkdirTemp("", "bench-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	for i := 0; i < records; i++ {
		lsn, err := w.Append(mkDelta(i))
		if err != nil {
			return nil, err
		}
		if lsn != uint64(i+1) {
			return nil, fmt.Errorf("wal: append %d assigned LSN %d", i, lsn)
		}
	}
	seen := 0
	err = w.Replay(0, func(r wal.Record) error {
		want := mkDelta(seen)
		if r.LSN != uint64(seen+1) || !bytes.Equal(graph.EncodeDelta(r.Delta), graph.EncodeDelta(want)) {
			return fmt.Errorf("wal: record %d drifted on replay", seen)
		}
		seen++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if seen != records {
		return nil, fmt.Errorf("wal: replayed %d records, want %d", seen, records)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	reopened, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("wal: reopen: %w", err)
	}
	if got := reopened.DurableLSN(); got != records {
		return nil, fmt.Errorf("wal: reopen recovered LSN %d, want %d", got, records)
	}
	reopened.Close()

	rep := &walReport{
		Benchmark:   "wal_append",
		RecordBytes: len(graph.EncodeDelta(mkDelta(0))),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Reps:        reps,
		Timestamp:   time.Now().UTC(),
	}
	for _, mode := range []string{"blocking", "pipelined"} {
		// The pipelined stream needs enough records for multiple sync
		// batches to overlap; the blocking mode pays one sync wait per
		// append, so 128 already dominates the timer.
		n := records
		if mode == "pipelined" {
			n = 4096
		}
		for _, writers := range counts {
			best := time.Duration(0)
			for r := 0; r < reps; r++ {
				runDir, err := os.MkdirTemp("", "bench-wal-run-*")
				if err != nil {
					return nil, err
				}
				wr, err := wal.Open(runDir, wal.Options{})
				if err != nil {
					os.RemoveAll(runDir)
					return nil, err
				}
				var wg sync.WaitGroup
				var failed atomic.Bool
				t0 := time.Now()
				for g := 0; g < writers; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						if mode == "blocking" {
							for i := g; i < n; i += writers {
								if _, err := wr.Append(mkDelta(i)); err != nil {
									failed.Store(true)
									return
								}
							}
							return
						}
						var last uint64
						for i := g; i < n; i += writers {
							lsn, err := wr.AppendAsync(mkDelta(i))
							if err != nil {
								failed.Store(true)
								return
							}
							last = lsn
						}
						// The ack barrier: nothing in this writer's stream
						// counts until its newest record is fsynced.
						if err := wr.WaitDurable(last); err != nil {
							failed.Store(true)
						}
					}(g)
				}
				wg.Wait()
				d := time.Since(t0)
				durable := wr.DurableLSN()
				wr.Close()
				os.RemoveAll(runDir)
				if failed.Load() || durable != uint64(n) {
					return nil, fmt.Errorf("wal: %s writers=%d lost records (durable %d, want %d)", mode, writers, durable, n)
				}
				if best == 0 || d < best {
					best = d
				}
			}
			run := walRun{
				Mode:          mode,
				Writers:       writers,
				Records:       n,
				BestNs:        best.Nanoseconds(),
				NsPerAppend:   best.Nanoseconds() / int64(n),
				AppendsPerSec: float64(n) / best.Seconds(),
			}
			rep.Runs = append(rep.Runs, run)
			fmt.Printf("wal     mode=%-9s writers=%-3d best=%8.2fms appends/s=%9.0f\n",
				mode, writers, float64(best.Nanoseconds())/1e6, run.AppendsPerSec)
		}
	}
	return rep, nil
}

// updateGraph mirrors the community-structured bench graph of
// BenchmarkApplyUpdate: clusters of users around cluster-local attribute
// nodes, the regime where a delta's re-match neighborhood stays a small
// fraction of the graph.
func updateGraph(communities, usersPer int) *graph.Graph {
	b := graph.NewBuilder()
	for _, tn := range []string{"user", "school", "employer", "hobby"} {
		b.Types().Register(tn)
	}
	for c := 0; c < communities; c++ {
		school := b.AddNodeOnce("school", fmt.Sprintf("school-%d", c))
		emp := b.AddNodeOnce("employer", fmt.Sprintf("employer-%d", c))
		for u := 0; u < usersPer; u++ {
			user := b.AddNode("user", fmt.Sprintf("user-%d-%d", c, u))
			b.AddEdge(user, school)
			if u%2 == 0 {
				b.AddEdge(user, emp)
			}
		}
	}
	return b.MustBuild()
}

// benchUpdate runs one live ApplyUpdate cycle through the public engine
// API, cross-checks the incremental index maintenance byte-for-byte
// against a from-scratch re-match of the final graph, and times
// incremental vs full re-match.
func benchUpdate(reps int) (*updateReport, error) {
	const communities, usersPer = 60, 10
	g := updateGraph(communities, usersPer)
	anchor := g.Types().ID("user")
	pats := mining.ProximityFilter(mining.Mine(g, mining.Options{MaxNodes: 4, MinSupport: 5}), anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) == 0 {
		return nil, fmt.Errorf("update: no metagraphs mined from the community graph")
	}
	mkMatcher := func(gr *graph.Graph) match.Matcher { return match.NewSymISO(gr) }

	// The delta: one new user joining community 0.
	delta := graph.Delta{
		Nodes: []graph.DeltaNode{{Type: "user", Value: "update-user"}},
		Edges: []graph.Edge{
			{U: graph.NodeID(g.NumNodes()), V: g.NodeByName("school-0")},
			{U: graph.NodeID(g.NumNodes()), V: g.NodeByName("user-0-0")},
		},
	}

	// Full engine cycle: train, update, query — the exact flow semproxd's
	// POST /update drives.
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 5}
	opts.Train.Restarts = 1
	opts.Train.MaxIters = 60
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		return nil, err
	}
	eng.Train("community", []semprox.Example{
		{Q: g.NodeByName("user-0-0"), X: g.NodeByName("user-0-1"), Y: g.NodeByName("user-1-0")},
		{Q: g.NodeByName("user-2-0"), X: g.NodeByName("user-2-1"), Y: g.NodeByName("user-3-0")},
	})
	st, err := eng.ApplyUpdate(delta)
	if err != nil {
		return nil, fmt.Errorf("update: ApplyUpdate: %w", err)
	}
	if st.Epoch != 1 || st.NodesAdded != 1 || st.EdgesAdded != 2 {
		return nil, fmt.Errorf("update: unexpected stats %+v", st)
	}
	eng.Compact()
	ranked, err := eng.Query("community", eng.Graph().NodeByName("update-user"), 5)
	if err != nil {
		return nil, fmt.Errorf("update: query after update: %w", err)
	}
	if len(ranked) == 0 {
		return nil, fmt.Errorf("update: new user has no ranked neighbors after update")
	}

	// Byte-for-byte cross-check of the incremental index maintenance.
	parts, _ := index.MatchParts(ms, func() match.Matcher { return mkMatcher(g) }, 1)
	ng, touched, err := g.Apply(delta)
	if err != nil {
		return nil, err
	}
	patched := make([]*index.Index, len(ms))
	for i, m := range ms {
		patched[i] = parts[i].WithPatch(index.RematchDelta(ng, m, mkMatcher, touched))
	}
	final := ng.Compact()
	var got, want bytes.Buffer
	if err := index.Write(&got, index.Merge(patched...)); err != nil {
		return nil, err
	}
	if err := index.Write(&want, index.BuildParallel(ms, func() match.Matcher { return mkMatcher(final) }, 1)); err != nil {
		return nil, err
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		return nil, fmt.Errorf("update: incrementally patched index differs from the from-scratch build")
	}

	// Timings: patch every part incrementally vs re-match everything.
	var incBest, rebuildBest time.Duration
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for _, m := range ms {
			index.RematchDelta(ng, m, mkMatcher, touched)
		}
		if d := time.Since(t0); incBest == 0 || d < incBest {
			incBest = d
		}
		t0 = time.Now()
		index.BuildParallel(ms, func() match.Matcher { return mkMatcher(final) }, 1)
		if d := time.Since(t0); rebuildBest == 0 || d < rebuildBest {
			rebuildBest = d
		}
	}
	rep := &updateReport{
		Benchmark:     "incremental_update",
		Communities:   communities,
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Metagraphs:    len(ms),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Reps:          reps,
		Timestamp:     time.Now().UTC(),
		IncrementalNs: incBest.Nanoseconds(),
		RebuildNs:     rebuildBest.Nanoseconds(),
		Speedup:       float64(rebuildBest) / float64(incBest),
	}
	fmt.Printf("update  incremental=%8.2fms rebuild=%8.2fms speedup=%.1fx (epoch %d, %d rematched)\n",
		float64(incBest.Nanoseconds())/1e6, float64(rebuildBest.Nanoseconds())/1e6, rep.Speedup, st.Epoch, st.Rematched)
	return rep, nil
}
