// Command bench measures the offline indexing pipeline (mine → match →
// index, the dominant cost of Table III) across worker counts and emits a
// machine-readable BENCH_offline.json, so successive changes to the
// pipeline leave a perf trajectory. The serial/parallel outputs are also
// cross-checked byte-for-byte before timings are reported.
//
// Usage:
//
//	go run ./cmd/bench [-users 200] [-reps 3] [-workers 1,2,4,8] [-out BENCH_offline.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/mining"
)

type run struct {
	Workers int     `json:"workers"`
	BestNs  int64   `json:"best_ns"`
	BestMs  float64 `json:"best_ms"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type report struct {
	Benchmark  string    `json:"benchmark"`
	Dataset    string    `json:"dataset"`
	Users      int       `json:"users"`
	Metagraphs int       `json:"metagraphs"`
	NumPairs   int       `json:"num_pairs"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Reps       int       `json:"reps"`
	Timestamp  time.Time `json:"timestamp"`
	Runs       []run     `json:"runs"`
}

func main() {
	users := flag.Int("users", 200, "LinkedIn dataset size (bench scale)")
	reps := flag.Int("reps", 3, "repetitions per worker count (best wins)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	out := flag.String("out", "BENCH_offline.json", "output path ('-' for stdout only)")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*workersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			log.Fatalf("bad -workers element %q", f)
		}
		counts = append(counts, n)
	}
	// speedup_vs_serial needs the serial run first; prepend it when absent
	// and drop duplicate counts so every row has the same baseline.
	if len(counts) == 0 || counts[0] != 1 {
		counts = append([]int{1}, counts...)
	}
	seen := map[int]bool{}
	uniq := counts[:0]
	for _, w := range counts {
		if !seen[w] {
			seen[w] = true
			uniq = append(uniq, w)
		}
	}
	counts = uniq

	ds := dataset.LinkedIn(dataset.Config{Users: *users, Seed: 1, NoiseRate: 0.05})
	pats := mining.ProximityFilter(
		mining.Mine(ds.G, mining.Options{MaxNodes: 4, MinSupport: 5}), ds.Anchor)
	ms := mining.Metagraphs(pats)
	if len(ms) == 0 {
		log.Fatal("no metagraphs mined; raise -users")
	}
	newMatcher := func() match.Matcher { return match.NewSymISO(ds.G) }

	// Correctness gate: every worker count must rebuild the serial index
	// byte-for-byte before its timings mean anything.
	ref := index.BuildParallel(ms, newMatcher, 1)
	var refBuf bytes.Buffer
	if err := index.Write(&refBuf, ref); err != nil {
		log.Fatal(err)
	}
	for _, w := range counts {
		var buf bytes.Buffer
		if err := index.Write(&buf, index.BuildParallel(ms, newMatcher, w)); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), refBuf.Bytes()) {
			log.Fatalf("workers=%d produced a different index than the serial build", w)
		}
	}

	rep := report{
		Benchmark:  "offline_index_build",
		Dataset:    "LinkedIn",
		Users:      *users,
		Metagraphs: len(ms),
		NumPairs:   ref.NumPairs(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       *reps,
		Timestamp:  time.Now().UTC(),
	}
	var serialBest time.Duration
	for _, w := range counts {
		best := time.Duration(0)
		for r := 0; r < *reps; r++ {
			t0 := time.Now()
			ix := index.BuildParallel(ms, newMatcher, w)
			d := time.Since(t0)
			if ix.NumPairs() != ref.NumPairs() {
				log.Fatalf("workers=%d: pair count drifted", w)
			}
			if best == 0 || d < best {
				best = d
			}
		}
		if w == 1 {
			serialBest = best
		}
		speedup := 0.0
		if serialBest > 0 {
			speedup = float64(serialBest) / float64(best)
		}
		rep.Runs = append(rep.Runs, run{
			Workers: w,
			BestNs:  best.Nanoseconds(),
			BestMs:  float64(best.Nanoseconds()) / 1e6,
			Speedup: speedup,
		})
		fmt.Printf("workers=%-3d best=%8.2fms speedup=%.2fx\n",
			w, float64(best.Nanoseconds())/1e6, speedup)
	}

	js, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	js = append(js, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (%d metagraphs, GOMAXPROCS=%d)\n", *out, len(ms), rep.GoMaxProcs)
	} else {
		os.Stdout.Write(js)
	}
}
