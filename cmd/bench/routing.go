package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/fixtures"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// routingReport is the BENCH_routing.json shape: the routed-serving
// cycle — one durable primary, two streaming followers, a replica-aware
// Router — cross-checked (routed answers must be element-identical to
// direct primary answers) and then timed routed vs direct.
type routingReport struct {
	Benchmark  string    `json:"benchmark"`
	Followers  int       `json:"followers"`
	Users      int       `json:"users"`
	Queries    int       `json:"queries_per_rep"`
	K          int       `json:"k"`
	Updates    int       `json:"updates_streamed"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Reps       int       `json:"reps"`
	Timestamp  time.Time `json:"timestamp"`
	// Direct: every query straight at the primary. Routed: the same
	// queries through the Router's follower rotation. Both loopback HTTP.
	DirectNsPerQuery int64   `json:"direct_ns_per_query"`
	DirectQPS        float64 `json:"direct_qps"`
	RoutedNsPerQuery int64   `json:"routed_ns_per_query"`
	RoutedQPS        float64 `json:"routed_qps"`
	// FollowerReadShare is the fraction of routed reads served by
	// followers (the rest fell back to the primary — 0 fallbacks
	// expected with both followers caught up).
	FollowerReadShare float64 `json:"follower_read_share"`
	// BackendReads is the per-backend routed read count, primary first,
	// then followers in rotation order.
	BackendReads []uint64 `json:"backend_reads"`
}

// benchRouting stands up the full replication + routing stack in one
// process — durable primary (WAL in a temp dir), two real followers
// bootstrapped over loopback HTTP, live updates streamed through — and
// fails (exit non-zero, like every other drift check here) unless every
// routed query is element-identical to the same query asked of the
// primary directly, at every replica the rotation lands on.
func benchRouting(reps, k int) (*routingReport, error) {
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		return nil, err
	}
	eng.Train("classmate", []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	})

	dir, err := os.MkdirTemp("", "bench-routing-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	srv := server.New(eng)
	srv.AttachWAL(w)
	pts := httptest.NewServer(srv)
	defer pts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const nFollowers = 2
	var followers []*replica.Follower
	var urls []string
	for i := 0; i < nFollowers; i++ {
		f := replica.NewFollower(pts.URL, pts.Client())
		f.PollWait = 200 * time.Millisecond
		f.Backoff = 20 * time.Millisecond
		if err := f.Bootstrap(ctx); err != nil {
			return nil, fmt.Errorf("routing: bootstrap follower %d: %w", i, err)
		}
		go f.Run(ctx) //nolint:errcheck // ends with ctx
		fsrv := server.New(f.Engine())
		fsrv.SetFollower(f)
		fts := httptest.NewServer(fsrv)
		defer fts.Close()
		followers = append(followers, f)
		urls = append(urls, fts.URL)
	}

	// Live updates through the routed write path (pinned to the primary)
	// so the followers stream real WAL records before serving.
	router := client.NewRouter(pts.URL, urls, pts.Client())
	const updates = 4
	for i := 0; i < updates; i++ {
		if _, err := router.Update(ctx, api.UpdateRequest{
			Nodes: []api.UpdateNode{{Type: "user", Name: fmt.Sprintf("routed-%d", i)}},
			Edges: []api.UpdateEdge{{U: fmt.Sprintf("routed-%d", i), V: "Kate"}},
		}); err != nil {
			return nil, fmt.Errorf("routing: update %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		ready := 0
		for _, f := range followers {
			if f.Status().Ready {
				ready++
			}
		}
		if ready == nFollowers && router.Probe(ctx) == nFollowers {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("routing: followers never caught up (%d/%d ready)", ready, nFollowers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cross-check before any timing: routed must equal direct, element
	// for element, often enough to hit every replica in rotation.
	direct := client.New(pts.URL, pts.Client())
	fg := eng.Graph()
	var names []string
	for _, q := range fg.NodesOfType(fg.Types().ID("user")) {
		names = append(names, fg.Name(q))
	}
	sort.Strings(names)
	for _, name := range names {
		want, err := direct.Query(ctx, "classmate", name, k)
		if err != nil {
			return nil, fmt.Errorf("routing: direct query %q: %w", name, err)
		}
		for rep := 0; rep < nFollowers+1; rep++ {
			got, err := router.Query(ctx, "classmate", name, k)
			if err != nil {
				return nil, fmt.Errorf("routing: routed query %q: %w", name, err)
			}
			if !reflect.DeepEqual(got, want) {
				return nil, fmt.Errorf("routing: routed query %q diverged from the direct primary answer", name)
			}
		}
	}

	rep := &routingReport{
		Benchmark:  "routed_serving",
		Followers:  nFollowers,
		Users:      len(names),
		Queries:    len(names),
		K:          k,
		Updates:    updates,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Timestamp:  time.Now().UTC(),
	}
	var directBest, routedBest time.Duration
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		for _, name := range names {
			if _, err := direct.Query(ctx, "classmate", name, k); err != nil {
				return nil, err
			}
		}
		if d := time.Since(t0); directBest == 0 || d < directBest {
			directBest = d
		}
		t0 = time.Now()
		for _, name := range names {
			if _, err := router.Query(ctx, "classmate", name, k); err != nil {
				return nil, err
			}
		}
		if d := time.Since(t0); routedBest == 0 || d < routedBest {
			routedBest = d
		}
	}
	rep.DirectNsPerQuery = directBest.Nanoseconds() / int64(len(names))
	rep.DirectQPS = float64(len(names)) / directBest.Seconds()
	rep.RoutedNsPerQuery = routedBest.Nanoseconds() / int64(len(names))
	rep.RoutedQPS = float64(len(names)) / routedBest.Seconds()

	counts := router.Counts()
	primaryReads := counts[pts.URL]
	var followerReads uint64
	rep.BackendReads = []uint64{primaryReads}
	for _, u := range urls {
		followerReads += counts[u]
		rep.BackendReads = append(rep.BackendReads, counts[u])
	}
	total := primaryReads + followerReads
	if total > 0 {
		rep.FollowerReadShare = float64(followerReads) / float64(total)
	}
	// With both followers live the primary serves zero routed reads; a
	// fallback here means readiness flapped mid-bench, which is drift.
	if primaryReads != 0 {
		return nil, fmt.Errorf("routing: %d routed reads fell back to the primary with %d live followers", primaryReads, nFollowers)
	}
	for i, u := range urls {
		if counts[u] == 0 {
			return nil, fmt.Errorf("routing: follower %d served no routed reads (rotation broken)", i)
		}
	}
	fmt.Printf("routing followers=%d direct=%7.0f qps routed=%7.0f qps follower_share=%.2f\n",
		nFollowers, rep.DirectQPS, rep.RoutedQPS, rep.FollowerReadShare)
	return rep, nil
}
