// Command semproxd serves semantic proximity queries over HTTP — the
// online half of the paper's framework (Fig. 3) behind a deployable
// binary. It either runs the offline pipeline itself (generate dataset →
// mine → match → train) or starts instantly from an engine snapshot, can
// write a snapshot after training so the next start skips the offline
// phase entirely, and optionally runs durable (-wal) or as a read replica
// of another semproxd (-follow).
//
// Examples:
//
//	# Offline build at startup, then serve on :8080 and persist the
//	# trained engine for the next start.
//	semproxd -dataset linkedin -users 400 -save engine.snap
//
//	# Durable primary: every /update is fsynced to the write-ahead log
//	# before it is applied; a crash (kill -9) replays the log tail on the
//	# next boot, so no acknowledged update is ever lost.
//	semproxd -snapshot engine.snap -wal /var/lib/semprox/wal
//
//	# Read replica: bootstrap from the primary's snapshot endpoint,
//	# stream its log, serve identical /v1/query answers. /v1/readyz flips
//	# to 200 once caught up; /v1/update on a follower is 503.
//	semproxd -follow http://primary:8080 -addr :8081
//
//	# Query either of them. Every endpoint lives under /v1 (the wire
//	# contract is the api package); the unversioned pre-v1 paths keep
//	# working as byte-identical aliases.
//	curl 'localhost:8080/v1/query?class=college&query=user-17&k=5'
//	curl -d '{"class":"college","queries":["user-17","user-3"],"k":5}' localhost:8080/v1/query
//
//	# Or skip curl: cmd/semproxctl wraps the typed client package and
//	# spreads reads across caught-up followers with failover.
//	semproxctl -primary http://localhost:8080 -followers http://localhost:8081 \
//	           -class college -query user-17 -k 5
//
//	# Mutate the live graph through the primary (queries keep serving;
//	# the epoch swaps atomically, the WAL makes it durable, followers
//	# stream it), then inspect positions.
//	curl -d '{"nodes":[{"type":"user","name":"zoe"}],"edges":[{"u":"zoe","v":"school-3"}]}' localhost:8080/v1/update
//	curl localhost:8080/v1/stats
//	curl localhost:8081/v1/readyz
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	semprox "repro"
	"repro/internal/atomicfile"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("semproxd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		snapshot   = flag.String("snapshot", "", "start from this engine snapshot instead of training")
		save       = flag.String("save", "", "write the trained engine snapshot here before serving")
		walDir     = flag.String("wal", "", "write-ahead log directory: fsync every /update before applying it, replay the log tail on boot, serve /replicate to followers")
		follow     = flag.String("follow", "", "run as a read replica of the primary at this base URL (e.g. http://host:8080); offline flags are ignored")
		stateDir   = flag.String("state", "", "follower-local state directory (snapshot + WAL): replicated records fsync here before applying, restarts resume from local state instead of re-bootstrapping, and promotion (-peers) serves writes from this log")
		peers      = flag.String("peers", "", "comma-separated base URLs of the other replication nodes: the follower monitors its primary and runs a promotion election when it dies (requires -state and -advertise)")
		advertise  = flag.String("advertise", "", "this node's own base URL as peers reach it (the identity used in promotion elections)")
		ackQuorum  = flag.Int("ack-replicas", 0, "if >0, hold each /update ack until a follower confirms durably applying it (synchronous replication: acked writes survive losing the primary)")
		dsName     = flag.String("dataset", "linkedin", "built-in dataset: linkedin or facebook (ignored with -snapshot)")
		users      = flag.Int("users", 400, "user count for built-in datasets (ignored with -snapshot)")
		classes    = flag.String("classes", "", "comma-separated classes to train (default: all dataset classes; ignored with -snapshot)")
		candidates = flag.Int("candidates", 0, "if >0, use dual-stage training with this many candidates (ignored with -snapshot)")
		nExamples  = flag.Int("examples", 200, "training triplets to sample per class (ignored with -snapshot)")
		maxNodes   = flag.Int("max-nodes", 4, "metagraph size cap (ignored with -snapshot)")
		minSupport = flag.Int("min-support", 5, "MNI support threshold for mining (ignored with -snapshot)")
		workers    = flag.Int("workers", 0, "matching/query workers (<1 = all CPUs; overrides a snapshot's setting)")
		seed       = flag.Int64("seed", 1, "random seed (ignored with -snapshot)")
		debugAddr  = flag.String("debug-addr", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables profiling endpoints")
		requestLog = flag.Bool("request-log", true, "emit one structured log line per request (endpoint, status, latency, trace ID, epoch)")
		slowQuery  = flag.Duration("slow-query", 500*time.Millisecond, "escalate a request's log line to WARN when it takes at least this long (0 never escalates)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler *server.Server
	var shutdown func()
	var err error
	if *follow != "" {
		handler, shutdown, err = buildFollower(ctx, *follow, *workers, *walDir, *save,
			*stateDir, *peers, *advertise, *ackQuorum)
	} else {
		handler, shutdown, err = buildPrimary(*snapshot, *save, *walDir, *dsName, *users,
			*classes, *candidates, *nExamples, *maxNodes, *minSupport, *workers, *seed)
		if err == nil && *ackQuorum > 0 {
			if *walDir == "" {
				err = fmt.Errorf("-ack-replicas needs -wal (synchronous replication rides the log)")
			} else {
				handler.SetAckReplicas(*ackQuorum)
			}
		}
	}
	if err != nil {
		log.Fatal(err)
	}
	if *requestLog {
		handler.SetRequestLog(slog.New(slog.NewTextHandler(os.Stderr, nil)), *slowQuery)
	}
	startDebugServer(*debugAddr)

	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Let in-flight background compactions from /update finish, then
	// release the durability/replication resources.
	handler.WaitCompactions()
	shutdown()
}

// startDebugServer serves the pprof handlers on their own listener — an
// explicit mux (never http.DefaultServeMux) on a separate address, so
// profiling stays opt-in and off the public serving port.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
	log.Printf("pprof on http://%s/debug/pprof/", addr)
}

// buildFollower boots a read replica — from its local state directory
// when one exists (restart without re-downloading), else from the
// primary's snapshot endpoint — and starts the streaming loop. With
// -peers and -advertise it also starts the promotion monitor: when the
// primary goes dark and this node wins the election, the follower's
// local log is sealed under a raised term and the server flips to
// serving writes on it.
func buildFollower(ctx context.Context, primaryURL string, workers int, walDir, save,
	stateDir, peersCSV, advertise string, ackQuorum int) (*server.Server, func(), error) {
	if err := replica.ValidPrimaryURL(primaryURL); err != nil {
		return nil, nil, err
	}
	if walDir != "" || save != "" {
		return nil, nil, fmt.Errorf("-wal and -save apply to primaries; a follower's durable state lives in -state")
	}
	var peers []string
	if peersCSV != "" {
		if stateDir == "" || advertise == "" {
			return nil, nil, fmt.Errorf("-peers needs -state (promotion serves writes from the local log) and -advertise (the election identity)")
		}
		if err := replica.ValidPrimaryURL(advertise); err != nil {
			return nil, nil, fmt.Errorf("-advertise: %w", err)
		}
		for _, p := range strings.Split(peersCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	f := replica.NewFollower(primaryURL, nil)
	f.Workers = workers
	f.Dir = stateDir
	start := time.Now()
	restored, err := f.Restore()
	if err != nil {
		// Local state that fails to restore is abandoned, not fatal: a
		// fresh bootstrap overwrites it and the node still joins.
		log.Printf("restore from %s failed (%v); bootstrapping fresh", stateDir, err)
	}
	if restored {
		eng := f.Engine()
		log.Printf("restored from %s in %.2fs: %d nodes, LSN %d, term %d",
			stateDir, time.Since(start).Seconds(), eng.Graph().NumNodes(), eng.LSN(), f.Status().Term)
	} else {
		if err := f.Bootstrap(ctx); err != nil {
			return nil, nil, err
		}
		eng := f.Engine()
		log.Printf("bootstrapped from %s in %.2fs: %d nodes, %d metagraphs, classes %v, LSN %d",
			primaryURL, time.Since(start).Seconds(), eng.Graph().NumNodes(),
			eng.NumMetagraphs(), eng.Classes(), eng.LSN())
	}
	runCtx, stopRun := context.WithCancel(ctx)
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		if err := f.Run(runCtx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("replication stopped: %v", err)
		}
	}()
	handler := server.New(f.Engine())
	handler.SetFollower(f)
	if len(peers) > 0 {
		go func() {
			m := &replica.Monitor{F: f, Self: advertise, Peers: peers}
			if err := m.Run(ctx); err != nil {
				return // shutdown
			}
			log.Printf("primary %s unreachable and this node won the election; promoting", f.PrimaryURL())
			stopRun()
			<-runDone
			w, err := f.Promote()
			if err != nil {
				log.Printf("PROMOTION FAILED: %v (still serving reads from the last applied state)", err)
				return
			}
			// The local log can end ahead of the engine (a batch fsynced
			// but not yet applied when Run stopped); replay closes the gap
			// before writes are accepted.
			if _, _, err := semprox.ReplayWAL(f.Engine(), w); err != nil {
				log.Printf("PROMOTION FAILED replaying the local log tail: %v", err)
				return
			}
			if err := handler.Promote(w); err != nil {
				log.Printf("PROMOTION FAILED: %v", err)
				return
			}
			if ackQuorum > 0 {
				handler.SetAckReplicas(ackQuorum)
			}
			log.Printf("promoted: accepting writes at term %d from LSN %d", w.Term(), w.NextLSN()-1)
		}()
	}
	return handler, func() {
		stopRun()
		if err := f.Close(); err != nil {
			log.Printf("follower close: %v", err)
		}
	}, nil
}

// buildPrimary loads or trains an engine, replays the WAL tail over it
// (crash recovery), persists the requested snapshot, and wires the WAL
// into the server.
func buildPrimary(snapshot, save, walDir, dsName string, users int,
	classes string, candidates, nExamples, maxNodes, minSupport, workers int, seed int64) (*server.Server, func(), error) {
	eng, err := buildEngine(snapshot, dsName, users, classes, candidates,
		nExamples, maxNodes, minSupport, workers, seed)
	if err != nil {
		return nil, nil, err
	}

	var w *wal.WAL
	if walDir != "" {
		w, err = wal.Open(walDir, wal.Options{BaseLSN: eng.LSN()})
		if err != nil {
			return nil, nil, err
		}
		start := time.Now()
		replayed, skipped, err := semprox.ReplayWAL(eng, w)
		if err != nil {
			return nil, nil, err
		}
		if replayed > 0 || skipped > 0 {
			eng.Compact()
			log.Printf("recovered %d logged updates in %.2fs (engine now at LSN %d, epoch %d)",
				replayed, time.Since(start).Seconds(), eng.LSN(), eng.Epoch())
		}
		if skipped > 0 {
			log.Printf("WARNING: replay reproduced %d recorded skip(s): record(s) this primary logged, "+
				"then rejected and alarmed about before a crash (a rejection NOT recorded in the "+
				"log's skip list would have failed this boot instead)", skipped)
		}
	}

	// Snapshot after recovery, so it covers every replayed record; the
	// log prefix it covers is then redundant and truncated away.
	if save != "" {
		if err := writeSnapshot(save, eng); err != nil {
			return nil, nil, err
		}
		log.Printf("wrote snapshot %s (LSN %d)", save, eng.LSN())
		if w != nil {
			if err := w.TruncateThrough(eng.LSN()); err != nil {
				return nil, nil, err
			}
		}
	}

	handler := server.New(eng)
	shutdown := func() {}
	if w != nil {
		handler.AttachWAL(w)
		shutdown = func() {
			if err := w.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}
		log.Printf("write-ahead log %s at LSN %d (%d segments)", walDir, w.DurableLSN(), w.SegmentCount())
	}
	return handler, shutdown, nil
}

// buildEngine loads a snapshot or runs the offline pipeline.
func buildEngine(snapshot, dsName string, users int, classes string, candidates,
	nExamples, maxNodes, minSupport, workers int, seed int64) (*semprox.Engine, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		eng, err := semprox.LoadEngine(f)
		if err != nil {
			return nil, err
		}
		// The snapshot carries the saving host's worker count; shard
		// queries for THIS host instead.
		eng.SetWorkers(workers)
		log.Printf("loaded snapshot %s in %.2fs: %d metagraphs, classes %v, LSN %d",
			snapshot, time.Since(start).Seconds(), eng.NumMetagraphs(), eng.Classes(), eng.LSN())
		return eng, nil
	}

	var ds *dataset.Dataset
	switch dsName {
	case "linkedin":
		ds = dataset.LinkedIn(dataset.Config{Users: users, Seed: seed, NoiseRate: 0.05})
	case "facebook":
		ds = dataset.Facebook(dataset.Config{Users: users, Seed: seed, NoiseRate: 0.05})
	default:
		return nil, fmt.Errorf("unknown dataset %q", dsName)
	}
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: maxNodes, MinSupport: minSupport}
	opts.Workers = workers
	opts.Train.Restarts = 3
	opts.Train.MaxIters = 400

	start := time.Now()
	eng, err := semprox.NewEngine(ds.G, "user", opts)
	if err != nil {
		return nil, err
	}
	log.Printf("mined %d metagraphs from %s (%d nodes) in %.1fs",
		eng.NumMetagraphs(), ds.Name, ds.G.NumNodes(), time.Since(start).Seconds())

	names := ds.ClassNames()
	if classes != "" {
		names = strings.Split(classes, ",")
	}
	for _, class := range names {
		class = strings.TrimSpace(class)
		labels, ok := ds.Classes[class]
		if !ok {
			return nil, fmt.Errorf("dataset %s has no class %q (have %v)", ds.Name, class, ds.ClassNames())
		}
		examples := semprox.MakeExamples(labels, labels.Queries(), ds.Users(), nExamples, seed)
		start := time.Now()
		if candidates > 0 {
			eng.TrainDualStage(class, examples, candidates)
		} else {
			eng.Train(class, examples)
		}
		log.Printf("trained %q on %d examples in %.1fs", class, len(examples), time.Since(start).Seconds())
	}
	return eng, nil
}

// writeSnapshot saves the engine atomically and durably — a crash at any
// point leaves either the old snapshot or the new one, never a truncated
// hybrid.
func writeSnapshot(path string, eng *semprox.Engine) error {
	return atomicfile.WriteWith(path, func(w io.Writer) error { return eng.Save(w) })
}
