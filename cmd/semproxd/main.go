// Command semproxd serves semantic proximity queries over HTTP — the
// online half of the paper's framework (Fig. 3) behind a deployable
// binary. It either runs the offline pipeline itself (generate dataset →
// mine → match → train) or starts instantly from an engine snapshot, and
// can write a snapshot after training so the next start skips the offline
// phase entirely.
//
// Examples:
//
//	# Offline build at startup, then serve on :8080 and persist the
//	# trained engine for the next start.
//	semproxd -dataset linkedin -users 400 -save engine.snap
//
//	# Serve a previously trained engine; no mining, matching or training.
//	semproxd -snapshot engine.snap -addr :9090
//
//	# Query it.
//	curl 'localhost:8080/query?class=college&query=user-17&k=5'
//	curl -d '{"class":"college","queries":["user-17","user-3"],"k":5}' localhost:8080/query
//
//	# Mutate the live graph (queries keep serving; the epoch swaps
//	# atomically and overlays compact in the background), then inspect it.
//	curl -d '{"nodes":[{"type":"user","name":"zoe"}],"edges":[{"u":"zoe","v":"school-3"}]}' localhost:8080/update
//	curl localhost:8080/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	semprox "repro"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("semproxd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		snapshot   = flag.String("snapshot", "", "start from this engine snapshot instead of training")
		save       = flag.String("save", "", "write the trained engine snapshot here before serving")
		dsName     = flag.String("dataset", "linkedin", "built-in dataset: linkedin or facebook (ignored with -snapshot)")
		users      = flag.Int("users", 400, "user count for built-in datasets (ignored with -snapshot)")
		classes    = flag.String("classes", "", "comma-separated classes to train (default: all dataset classes; ignored with -snapshot)")
		candidates = flag.Int("candidates", 0, "if >0, use dual-stage training with this many candidates (ignored with -snapshot)")
		nExamples  = flag.Int("examples", 200, "training triplets to sample per class (ignored with -snapshot)")
		maxNodes   = flag.Int("max-nodes", 4, "metagraph size cap (ignored with -snapshot)")
		minSupport = flag.Int("min-support", 5, "MNI support threshold for mining (ignored with -snapshot)")
		workers    = flag.Int("workers", 0, "matching/query workers (<1 = all CPUs; overrides a snapshot's setting)")
		seed       = flag.Int64("seed", 1, "random seed (ignored with -snapshot)")
	)
	flag.Parse()

	eng, err := buildEngine(*snapshot, *dsName, *users, *classes, *candidates,
		*nExamples, *maxNodes, *minSupport, *workers, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *save != "" {
		if err := writeSnapshot(*save, eng); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote snapshot %s", *save)
	}

	handler := server.New(eng)
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()
	log.Printf("serving %d classes on %s (%d nodes, %d metagraphs, epoch %d)",
		len(eng.Classes()), *addr, eng.Graph().NumNodes(), eng.NumMetagraphs(), eng.Epoch())
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Let in-flight background compactions from /update finish before the
	// process exits.
	handler.WaitCompactions()
}

// buildEngine loads a snapshot or runs the offline pipeline.
func buildEngine(snapshot, dsName string, users int, classes string, candidates,
	nExamples, maxNodes, minSupport, workers int, seed int64) (*semprox.Engine, error) {
	if snapshot != "" {
		f, err := os.Open(snapshot)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		start := time.Now()
		eng, err := semprox.LoadEngine(f)
		if err != nil {
			return nil, err
		}
		// The snapshot carries the saving host's worker count; shard
		// queries for THIS host instead.
		eng.SetWorkers(workers)
		log.Printf("loaded snapshot %s in %.2fs: %d metagraphs, classes %v",
			snapshot, time.Since(start).Seconds(), eng.NumMetagraphs(), eng.Classes())
		return eng, nil
	}

	var ds *dataset.Dataset
	switch dsName {
	case "linkedin":
		ds = dataset.LinkedIn(dataset.Config{Users: users, Seed: seed, NoiseRate: 0.05})
	case "facebook":
		ds = dataset.Facebook(dataset.Config{Users: users, Seed: seed, NoiseRate: 0.05})
	default:
		return nil, fmt.Errorf("unknown dataset %q", dsName)
	}
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: maxNodes, MinSupport: minSupport}
	opts.Workers = workers
	opts.Train.Restarts = 3
	opts.Train.MaxIters = 400

	start := time.Now()
	eng, err := semprox.NewEngine(ds.G, "user", opts)
	if err != nil {
		return nil, err
	}
	log.Printf("mined %d metagraphs from %s (%d nodes) in %.1fs",
		eng.NumMetagraphs(), ds.Name, ds.G.NumNodes(), time.Since(start).Seconds())

	names := ds.ClassNames()
	if classes != "" {
		names = strings.Split(classes, ",")
	}
	for _, class := range names {
		class = strings.TrimSpace(class)
		labels, ok := ds.Classes[class]
		if !ok {
			return nil, fmt.Errorf("dataset %s has no class %q (have %v)", ds.Name, class, ds.ClassNames())
		}
		examples := semprox.MakeExamples(labels, labels.Queries(), ds.Users(), nExamples, seed)
		start := time.Now()
		if candidates > 0 {
			eng.TrainDualStage(class, examples, candidates)
		} else {
			eng.Train(class, examples)
		}
		log.Printf("trained %q on %d examples in %.1fs", class, len(examples), time.Since(start).Seconds())
	}
	return eng, nil
}

// writeSnapshot saves the engine atomically (temp file + rename), so a
// crash mid-write never leaves a truncated snapshot behind.
func writeSnapshot(path string, eng *semprox.Engine) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".semproxd-snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := eng.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
