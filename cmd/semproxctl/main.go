// Command semproxctl is the semprox /v1 API from the command line — a
// thin shell over the typed client package, so scripts and operators
// speak the exact same wire contract (and the same replica-aware
// routing) as in-process consumers. Reads spread across caught-up
// followers with failover to the primary; updates pin to the primary.
//
// Examples:
//
//	# One routed query (round-robin over caught-up followers).
//	semproxctl -primary http://localhost:8080 \
//	           -followers http://localhost:8081,http://localhost:8082 \
//	           -class college -query user-17 -k 5
//
//	# 100 repetitions of the same query; every response must be
//	# byte-identical to the first or the command exits non-zero — a
//	# routed-consistency check across whatever replicas serve them.
//	semproxctl -primary http://localhost:8080 -followers http://localhost:8081 \
//	           -class college -query user-17 -n 100
//
//	# A live update (pinned to the primary), then positions.
//	semproxctl -primary http://localhost:8080 \
//	           -update '{"nodes":[{"type":"user","name":"zoe"}],"edges":[{"u":"zoe","v":"user-1"}]}'
//	semproxctl -primary http://localhost:8080 -stats
//	semproxctl -primary http://localhost:8080 -followers http://localhost:8081 -ready
//
//	# Fetch the primary's Prometheus exposition, filtered to one family
//	# prefix (same retry/timeout policy as every other action).
//	semproxctl -primary http://localhost:8080 -metrics -metrics-prefix semprox_wal
//
// Exactly one action (-query, -x/-y proximity, -update, -stats, -ready,
// -metrics) per invocation; the response JSON (or exposition text) goes
// to stdout, diagnostics to stderr.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/replica"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("semproxctl: ")
	var (
		primary   = flag.String("primary", "", "primary base URL (required), e.g. http://localhost:8080")
		followers = flag.String("followers", "", "comma-separated follower base URLs to spread reads across")
		class     = flag.String("class", "", "trained class for -query/-proximity")
		query     = flag.String("query", "", "query node name: print the routed ranking")
		proxX     = flag.String("x", "", "proximity pair: first node name (with -y)")
		proxY     = flag.String("y", "", "proximity pair: second node name (with -x)")
		k         = flag.Int("k", 0, "result count (0 = server default)")
		n         = flag.Int("n", 1, "repeat the read n times; all responses must be identical")
		update    = flag.String("update", "", "update JSON {\"nodes\":[...],\"edges\":[...]} to apply through the primary")
		stats     = flag.Bool("stats", false, "print the primary's "+api.PathStats)
		ready     = flag.Bool("ready", false, "print readiness of the primary and every follower; non-zero exit if any is not ready")
		metrics   = flag.Bool("metrics", false, "print the primary's /metrics Prometheus exposition")
		metPrefix = flag.String("metrics-prefix", "", "with -metrics, keep only families whose name starts with this prefix (HELP/TYPE lines included)")
		timeout   = flag.Duration("timeout", 30*time.Second, "overall command timeout")
		counts    = flag.Bool("counts", false, "print per-backend served counts after the reads, routing transitions (admit/eject/primary change) as they happen, and — with -stats against a semproxy edge tier — its hedge/cache counters, to stderr")
	)
	flag.Parse()
	if err := run(*primary, *followers, *class, *query, *proxX, *proxY,
		*update, *metPrefix, *k, *n, *stats, *ready, *metrics, *counts, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(primary, followers, class, query, proxX, proxY, update, metPrefix string,
	k, n int, stats, ready, metrics, counts bool, timeout time.Duration) error {
	if primary == "" {
		return fmt.Errorf("-primary is required")
	}
	if err := replica.ValidPrimaryURL(primary); err != nil {
		return err
	}
	var followerURLs []string
	for _, u := range strings.Split(followers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			if err := replica.ValidPrimaryURL(u); err != nil {
				return fmt.Errorf("follower %q: %w", u, err)
			}
			followerURLs = append(followerURLs, u)
		}
	}
	actions := 0
	for _, on := range []bool{query != "", proxX != "" || proxY != "", update != "", stats, ready, metrics} {
		if on {
			actions++
		}
	}
	if actions != 1 {
		return fmt.Errorf("pick exactly one of -query, -x/-y, -update, -stats, -ready, -metrics (got %d)", actions)
	}
	if n < 1 {
		return fmt.Errorf("-n must be >= 1, got %d", n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	router := client.NewRouter(primary, followerURLs, nil)
	if counts {
		router.OnEvent = func(ev client.Event) {
			fmt.Fprintf(os.Stderr, "semproxctl: routing %s %s (term %d): %s\n",
				ev.Type, ev.URL, ev.Term, ev.Reason)
		}
	}
	if len(followerURLs) > 0 && (query != "" || proxX != "") {
		live := router.Probe(ctx)
		fmt.Fprintf(os.Stderr, "semproxctl: %d/%d followers in rotation\n", live, len(followerURLs))
	}

	switch {
	case ready:
		return printReady(ctx, router)
	case metrics:
		expo, err := router.Primary().Metrics(ctx)
		if err != nil {
			return err
		}
		fmt.Print(filterExposition(expo, metPrefix))
		return nil
	case stats:
		st, err := router.Stats(ctx)
		if err != nil {
			return err
		}
		if err := emit(st); err != nil {
			return err
		}
		// When -primary points at a semproxy edge tier, the stats response
		// carries the proxy extension; -counts renders its hedge and cache
		// counters the way it renders per-backend read counts.
		if p := st.Proxy; counts && p != nil {
			hedgeRate := 0.0
			if p.Reads > 0 {
				hedgeRate = 100 * float64(p.HedgesIssued) / float64(p.Reads)
			}
			fmt.Fprintf(os.Stderr, "semproxctl: edge reads: %d forwarded, hedges %d issued / %d won / %d cancelled (%.1f%% hedge rate)\n",
				p.Reads, p.HedgesIssued, p.HedgesWon, p.HedgesCancelled, hedgeRate)
			hitRate := 0.0
			if lookups := p.CacheHits + p.CacheMisses; lookups > 0 {
				hitRate = 100 * float64(p.CacheHits) / float64(lookups)
			}
			fmt.Fprintf(os.Stderr, "semproxctl: edge cache: %d hits / %d misses (%.1f%%), %d entries / %d bytes resident, %d evictions, %d epoch flushes, epoch %d\n",
				p.CacheHits, p.CacheMisses, hitRate, p.CacheEntries, p.CacheBytes, p.CacheEvictions, p.EpochFlushes, p.Epoch)
		}
		return nil
	case update != "":
		var req api.UpdateRequest
		dec := json.NewDecoder(strings.NewReader(update))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("-update JSON: %w", err)
		}
		resp, err := router.Update(ctx, req)
		if err != nil {
			return err
		}
		return emit(resp)
	case query != "":
		if class == "" {
			return fmt.Errorf("-query needs -class")
		}
		return repeatRead(ctx, router, n, counts, func() (any, error) {
			return router.Query(ctx, class, query, k)
		})
	default: // proximity
		if class == "" || proxX == "" || proxY == "" {
			return fmt.Errorf("proximity needs -class, -x and -y")
		}
		return repeatRead(ctx, router, n, counts, func() (any, error) {
			return router.Proximity(ctx, class, proxX, proxY)
		})
	}
}

// repeatRead runs one routed read n times, demands every response be
// byte-identical to the first (replicas serving a routed query must be
// indistinguishable), prints the response once, and optionally reports
// which backends served.
func repeatRead(ctx context.Context, router *client.Router, n int, counts bool, read func() (any, error)) error {
	var first []byte
	for i := 0; i < n; i++ {
		resp, err := read()
		if err != nil {
			return fmt.Errorf("read %d/%d: %w", i+1, n, err)
		}
		js, err := json.Marshal(resp)
		if err != nil {
			return err
		}
		if first == nil {
			first = js
		} else if !bytes.Equal(js, first) {
			return fmt.Errorf("read %d/%d diverged across replicas:\nfirst: %s\n  now: %s", i+1, n, first, js)
		}
	}
	if counts {
		for url, c := range router.Counts() {
			fmt.Fprintf(os.Stderr, "semproxctl: %8d reads <- %s\n", c, url)
		}
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, first, "", "  "); err != nil {
		return err
	}
	fmt.Println(pretty.String())
	return nil
}

// printReady reports every replica's /v1/readyz as one JSON document and
// fails if any replica is unreachable or not ready.
func printReady(ctx context.Context, router *client.Router) error {
	type replicaState struct {
		URL   string             `json:"url"`
		Error string             `json:"error,omitempty"`
		State *api.ReadyResponse `json:"state,omitempty"`
	}
	var out []replicaState
	allReady := true
	probe := func(c *client.Client) {
		st, err := c.Ready(ctx)
		rs := replicaState{URL: c.BaseURL()}
		if err != nil {
			rs.Error = err.Error()
			allReady = false
		} else {
			rs.State = &st
			if !st.Ready() {
				allReady = false
			}
		}
		out = append(out, rs)
	}
	probe(router.Primary())
	for _, f := range router.Followers() {
		probe(f)
	}
	if err := emit(out); err != nil {
		return err
	}
	if !allReady {
		return fmt.Errorf("not all replicas ready")
	}
	return nil
}

// filterExposition keeps only families whose metric name starts with
// prefix. Comment lines (# HELP, # TYPE) filter on the name they
// annotate, samples on the series name, so the output stays a valid
// exposition fragment.
func filterExposition(expo, prefix string) string {
	if prefix == "" {
		return expo
	}
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(expo, "\n"), "\n") {
		name := line
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name = rest
		} else if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name = rest
		}
		if strings.HasPrefix(name, prefix) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// emit prints v as indented JSON on stdout.
func emit(v any) error {
	js, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(js))
	return nil
}
