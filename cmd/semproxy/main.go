// Command semproxy is the standalone edge tier: it serves the identical
// /v1 surface of a semproxd fleet (one primary + N followers) from a
// single address, so ANY HTTP caller — curl, a non-Go service, a load
// balancer health check — gets what previously only the Go client
// package provided: replica-aware read spreading, failover across a
// primary kill, and write routing that survives a promotion. On top of
// the routing it adds the two edge-tier perf layers (internal/proxy):
// hedged reads (a read outliving its backend's trailing-p95 budget is
// duplicated to the next live replica; first answer wins, loser
// cancelled, writes never hedged, hedges capped) and an epoch-keyed
// response cache (query/proximity responses cached under the engine
// epoch that computed them; any epoch bump flushes — no TTLs needed).
//
// Examples:
//
//	# Front a primary and two followers; hedging and a 4096-entry cache
//	# are on by default.
//	semproxy -addr :8090 -primary http://localhost:8080 \
//	         -followers http://localhost:8081,http://localhost:8082
//
//	# Same /v1 surface as the backends, now with failover + caching.
//	curl 'localhost:8090/v1/query?class=college&query=user-17&k=5'
//	curl localhost:8090/v1/stats   # backend stats + the proxy's counters
//
//	# Watch the hedge/cache counters through the CLI.
//	semproxctl -primary http://localhost:8090 -counts -stats
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/client"
	"repro/internal/proxy"
	"repro/internal/replica"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("semproxy: ")
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		primary      = flag.String("primary", "http://localhost:8080", "base URL of the (initially) primary backend")
		followers    = flag.String("followers", "", "comma-separated base URLs of follower backends")
		cacheEntries = flag.Int("cache-entries", 4096, "response cache capacity in entries (0 disables caching)")
		hedge        = flag.Bool("hedge", true, "hedge straggling reads to a second live replica")
		hedgeCap     = flag.Int("hedge-cap", proxy.DefaultHedgeCapPct, "max hedges as a percentage of forwarded reads")
		hedgeBudget  = flag.Duration("hedge-budget", proxy.DefaultHedgeBudget, "hedge latency budget before a backend's own p95 estimate exists")
		hedgeMax     = flag.Duration("hedge-budget-max", proxy.DefaultHedgeBudgetMax, "upper clamp on the per-backend p95 hedge budget")
		probe        = flag.Duration("probe", client.DefaultProbeInterval, "backend readiness probe interval")
		statsPoll    = flag.Duration("stats-poll", 500*time.Millisecond, "primary stats poll interval (epoch tracking for cache flushes; 0 disables)")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this extra address (e.g. localhost:6061); empty disables profiling endpoints")
		requestLog   = flag.Bool("request-log", true, "emit one structured log line per request (endpoint, status, latency, trace ID, epoch, cache/hedge outcome)")
		slowQuery    = flag.Duration("slow-query", 500*time.Millisecond, "escalate a request's log line to WARN when it takes at least this long (0 never escalates)")
	)
	flag.Parse()

	if err := replica.ValidPrimaryURL(*primary); err != nil {
		log.Fatalf("-primary: %v", err)
	}
	var followerURLs []string
	for _, u := range strings.Split(*followers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			if err := replica.ValidPrimaryURL(u); err != nil {
				log.Fatalf("-followers: %v", err)
			}
			followerURLs = append(followerURLs, u)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	router := client.NewRouter(*primary, followerURLs, nil)
	router.ProbeInterval = *probe
	router.OnEvent = func(ev client.Event) {
		log.Printf("routing: %s %s (%s)", ev.Type, ev.URL, ev.Reason)
	}
	p := proxy.New(router, proxy.Options{
		CacheEntries:   *cacheEntries,
		Hedge:          *hedge,
		HedgeCapPct:    *hedgeCap,
		HedgeBudget:    *hedgeBudget,
		HedgeBudgetMax: *hedgeMax,
	})
	if *requestLog {
		p.SetRequestLog(slog.New(slog.NewTextHandler(os.Stderr, nil)), *slowQuery)
	}
	startDebugServer(*debugAddr)

	// The probe loop keeps the live set and the resolved primary fresh;
	// the first sweep runs before serving so early requests have targets.
	router.Probe(ctx)
	go router.Run(ctx) //nolint:errcheck // returns ctx.Err() at shutdown

	// Epoch tracking: updates that bypass this proxy (another proxy, a
	// direct writer) still flush the cache within one poll interval; the
	// response-header path (internal/proxy) narrows the window further on
	// every forwarded read.
	if *statsPoll > 0 {
		go func() {
			tick := time.NewTicker(*statsPoll)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if st, err := router.Stats(ctx); err == nil {
						p.AdvanceEpoch(st.Epoch)
					}
				}
			}
		}()
	}

	log.Printf("edge tier on %s: primary %s, %d follower(s), cache %d entries, hedge %v (cap %d%%)",
		*addr, *primary, len(followerURLs), *cacheEntries, *hedge, *hedgeCap)
	srv := &http.Server{Addr: *addr, Handler: p}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}()
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// startDebugServer serves the pprof handlers on their own listener — an
// explicit mux (never http.DefaultServeMux) on a separate address, so
// profiling stays opt-in and off the public serving port.
func startDebugServer(addr string) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug server on %s: %v", addr, err)
		}
	}()
	log.Printf("pprof on http://%s/debug/pprof/", addr)
}
