package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/client"
	"repro/internal/replica"
	"repro/internal/server"
)

// fakeReplica is a stub backend with a togglable readiness and failure
// mode — enough HTTP semantics for the Router's routing decisions
// without an engine behind every test.
type fakeReplica struct {
	ts      *httptest.Server
	ready   atomic.Bool
	failing atomic.Bool // queries answer 500
	queries atomic.Int64
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathReadyz, func(w http.ResponseWriter, r *http.Request) {
		resp := api.ReadyResponse{Status: api.StatusReady, Role: api.RoleFollower}
		code := http.StatusOK
		if !f.ready.Load() {
			resp.Status = api.StatusCatchingUp
			resp.Lag = 3
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc(api.PathQuery, func(w http.ResponseWriter, r *http.Request) {
		f.queries.Add(1)
		if f.failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{ //nolint:errcheck
				Error: api.Error{Code: api.CodeInternal, Message: "induced failure"}})
			return
		}
		json.NewEncoder(w).Encode(api.QueryResponse{ //nolint:errcheck
			Class: "c", K: 1, Results: []api.QueryResult{{Query: name}}})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// servedBy extracts which fake backend answered a routed query.
func servedBy(resp api.QueryResponse) string {
	if len(resp.Results) == 1 {
		return resp.Results[0].Query
	}
	return "?"
}

// TestRouterSpreadsReads: two live followers share reads round-robin and
// the primary serves none.
func TestRouterSpreadsReads(t *testing.T) {
	p := newFakeReplica(t, "primary")
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL, f2.ts.URL}, nil)
	ctx := context.Background()
	if live := r.Probe(ctx); live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}
	got := map[string]int{}
	for i := 0; i < 10; i++ {
		resp, err := r.Query(ctx, "c", "q", 1)
		if err != nil {
			t.Fatal(err)
		}
		got[servedBy(resp)]++
	}
	if got["f1"] != 5 || got["f2"] != 5 {
		t.Fatalf("spread = %v, want 5/5", got)
	}
	if p.queries.Load() != 0 {
		t.Fatalf("primary served %d reads with two live followers", p.queries.Load())
	}
	counts := r.Counts()
	if counts[f1.ts.URL] != 5 || counts[f2.ts.URL] != 5 || counts[p.ts.URL] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestRouterLaggingFollowerEjectedAndReadmitted: a follower whose readyz
// reports catching_up leaves rotation at the next probe and re-enters
// once it reports ready again.
func TestRouterLaggingFollowerEjectedAndReadmitted(t *testing.T) {
	p := newFakeReplica(t, "primary")
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL, f2.ts.URL}, nil)
	ctx := context.Background()

	f1.ready.Store(false)
	if live := r.Probe(ctx); live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}
	if got := r.Live(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("live set = %v, want [1]", got)
	}
	for i := 0; i < 4; i++ {
		resp, err := r.Query(ctx, "c", "q", 1)
		if err != nil {
			t.Fatal(err)
		}
		if servedBy(resp) != "f2" {
			t.Fatalf("read %d served by %s, want f2", i, servedBy(resp))
		}
	}
	if f1.queries.Load() != 0 {
		t.Fatal("lagging follower served reads")
	}

	f1.ready.Store(true)
	if live := r.Probe(ctx); live != 2 {
		t.Fatalf("live after catch-up = %d, want 2", live)
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		resp, err := r.Query(ctx, "c", "q", 1)
		if err != nil {
			t.Fatal(err)
		}
		seen[servedBy(resp)] = true
	}
	if !seen["f1"] || !seen["f2"] {
		t.Fatalf("re-admitted follower not serving: %v", seen)
	}
}

// TestRouterFailsOverAndEjectsOnError: a follower that starts answering
// 5xx is ejected mid-request — the read completes on another replica —
// and reads never return the failure to the caller.
func TestRouterFailsOverAndEjectsOnError(t *testing.T) {
	p := newFakeReplica(t, "primary")
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL, f2.ts.URL}, nil)
	ctx := context.Background()
	r.Probe(ctx)

	f1.failing.Store(true)
	for i := 0; i < 6; i++ {
		resp, err := r.Query(ctx, "c", "q", 1)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if servedBy(resp) == "f1" {
			t.Fatalf("read %d served by the failing follower", i)
		}
	}
	// f1 took at most one request (the failover trigger), then left
	// rotation without a probe.
	if n := f1.queries.Load(); n > 1 {
		t.Fatalf("failing follower was retried %d times", n)
	}
	if got := r.Live(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("live set = %v, want [1]", got)
	}

	// Both followers down: reads fail over to the primary, still no
	// caller-visible error.
	f2.failing.Store(true)
	resp, err := r.Query(ctx, "c", "q", 1)
	if err != nil {
		t.Fatal(err)
	}
	if servedBy(resp) != "primary" {
		t.Fatalf("served by %s, want primary", servedBy(resp))
	}
}

// TestRouterLocalValidationDoesNotEject: a batch the client refuses to
// send at all (empty, over-limit) is the caller's mistake; it must not
// be mistaken for per-replica transport failures and empty the rotation.
func TestRouterLocalValidationDoesNotEject(t *testing.T) {
	p := newFakeReplica(t, "primary")
	f1 := newFakeReplica(t, "f1")
	f2 := newFakeReplica(t, "f2")
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL, f2.ts.URL}, nil)
	ctx := context.Background()
	r.Probe(ctx)
	if _, err := r.QueryBatch(ctx, "c", nil, 1); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := r.QueryBatch(ctx, "c", make([]string, api.MaxBatch+1), 1); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if got := r.Live(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("local validation emptied the rotation: live = %v", got)
	}
	if f1.queries.Load() != 0 || f2.queries.Load() != 0 || p.queries.Load() != 0 {
		t.Fatal("a locally invalid batch reached a backend")
	}
}

// TestRouterClientErrorDoesNotFailOver: a 4xx is the caller's mistake;
// it returns immediately and ejects nobody.
func TestRouterClientErrorDoesNotFailOver(t *testing.T) {
	h := newHarness(t) // real engine: produces genuine 404s
	f := replica.NewFollower(h.ts.URL, h.ts.Client())
	f.PollWait = 100 * time.Millisecond
	f.Backoff = 20 * time.Millisecond
	if err := f.Bootstrap(context.Background()); err != nil {
		t.Fatal(err)
	}
	fsrv := server.New(f.Engine())
	fsrv.SetFollower(f)
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	r := client.NewRouter(h.ts.URL, []string{fts.URL}, nil)
	ctx := context.Background()
	// Force the follower live despite lag: poll once against a quiet
	// primary.
	go f.Run(ctx) //nolint:errcheck
	waitReady(t, f)
	if live := r.Probe(ctx); live != 1 {
		t.Fatalf("live = %d, want 1", live)
	}

	_, err := r.Query(ctx, "classmate", "Nobody", 3)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNodeNotFound {
		t.Fatalf("error = %v, want node_not_found", err)
	}
	if got := r.Live(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("4xx ejected the follower: live = %v", got)
	}
}

// waitReady blocks until the follower reports ready.
func waitReady(t testing.TB, f *replica.Follower) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.Status().Ready {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("follower never became ready")
}

// routedHarness is the full in-process routed-serving stack the ISSUE's
// acceptance criteria name: one durable primary, two real followers
// streaming its WAL, and a Router over all three.
type routedHarness struct {
	h         *harness
	followers []*replica.Follower
	fservers  []*httptest.Server
	router    *client.Router
	cancel    context.CancelFunc
}

func newRoutedHarness(t *testing.T, nFollowers int) *routedHarness {
	t.Helper()
	h := newHarness(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rh := &routedHarness{h: h, cancel: cancel}
	var urls []string
	for i := 0; i < nFollowers; i++ {
		f := replica.NewFollower(h.ts.URL, h.ts.Client())
		f.PollWait = 200 * time.Millisecond
		f.Backoff = 20 * time.Millisecond
		if err := f.Bootstrap(ctx); err != nil {
			t.Fatal(err)
		}
		go f.Run(ctx) //nolint:errcheck
		fsrv := server.New(f.Engine())
		fsrv.SetFollower(f)
		fts := httptest.NewServer(fsrv)
		t.Cleanup(fts.Close)
		rh.followers = append(rh.followers, f)
		rh.fservers = append(rh.fservers, fts)
		urls = append(urls, fts.URL)
	}
	rh.router = client.NewRouter(h.ts.URL, urls, nil)
	return rh
}

// waitAllReady probes until every follower is caught up and in rotation.
func (rh *routedHarness) waitAllReady(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if rh.router.Probe(ctx) == len(rh.followers) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("only %d/%d followers ever became ready", rh.router.Probe(ctx), len(rh.followers))
}

// TestRoutedEqualsDirectUnderConcurrentUpdates is the acceptance
// criterion's first half: reader goroutines hammer the Router while the
// primary applies live updates (run with -race via make test) — every
// routed read must succeed — and at quiescence every routed query is
// element-identical to the same query asked of the primary directly.
func TestRoutedEqualsDirectUnderConcurrentUpdates(t *testing.T) {
	rh := newRoutedHarness(t, 2)
	rh.waitAllReady(t)
	ctx, stopProbe := context.WithCancel(context.Background())
	defer stopProbe()
	rh.router.ProbeInterval = 20 * time.Millisecond
	go rh.router.Run(ctx) //nolint:errcheck

	var failed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"Kate", "Bob", "Alice", "Jay", "Tom"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := names[(w+i)%len(names)]
				if _, err := rh.router.Query(ctx, "classmate", name, 5); err != nil {
					t.Errorf("routed query %s: %v", name, err)
					failed.Add(1)
					return
				}
				if _, err := rh.router.Proximity(ctx, "classmate", name, "Kate"); err != nil {
					t.Errorf("routed proximity %s: %v", name, err)
					failed.Add(1)
					return
				}
			}
		}(w)
	}
	// Live updates through the router (pinned to the primary) while the
	// readers run.
	for i := 0; i < 5; i++ {
		_, err := rh.router.Update(ctx, api.UpdateRequest{
			Nodes: []api.UpdateNode{{Type: "user", Name: fmt.Sprintf("live-%d", i)}},
			Edges: []api.UpdateEdge{{U: fmt.Sprintf("live-%d", i), V: "Kate"}},
		})
		if err != nil {
			t.Fatalf("routed update %d: %v", i, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d routed reads failed during concurrent updates", failed.Load())
	}

	// Quiesce, then: routed == direct, element for element, for every
	// user — including the live-added ones — however the rotation lands.
	for _, f := range rh.followers {
		waitReady(t, f)
	}
	rh.waitAllReady(t)
	direct := client.New(rh.h.ts.URL, rh.h.ts.Client())
	g := rh.h.eng.Graph()
	users := g.NodesOfType(g.Types().ID("user"))
	for _, q := range users {
		name := g.Name(q)
		want, err := direct.Query(ctx, "classmate", name, 10)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ { // hit every replica in rotation
			got, err := rh.router.Query(ctx, "classmate", name, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("routed query %q diverged from direct:\n got %+v\nwant %+v", name, got, want)
			}
		}
	}
	// The spread was real: every follower served reads.
	counts := rh.router.Counts()
	for _, fts := range rh.fservers {
		if counts[fts.URL] == 0 {
			t.Fatalf("follower %s served nothing: %v", fts.URL, counts)
		}
	}
}

// TestFailoverPrimaryDeath is the acceptance criterion's second half:
// killing the primary mid-stream leaves read traffic flowing through the
// caught-up followers with zero failed requests.
func TestFailoverPrimaryDeath(t *testing.T) {
	rh := newRoutedHarness(t, 2)
	ctx := context.Background()

	// Some writes first, so the followers hold real replicated state.
	for i := 0; i < 3; i++ {
		if _, err := rh.router.Update(ctx, api.UpdateRequest{
			Nodes: []api.UpdateNode{{Type: "user", Name: fmt.Sprintf("pre-%d", i)}},
			Edges: []api.UpdateEdge{{U: fmt.Sprintf("pre-%d", i), V: "Alice"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range rh.followers {
		waitReady(t, f)
	}
	rh.waitAllReady(t)

	// Reference answers while everything is alive.
	type ref struct {
		name string
		want api.QueryResponse
	}
	g := rh.h.eng.Graph()
	var refs []ref
	for _, q := range g.NodesOfType(g.Types().ID("user")) {
		name := g.Name(q)
		want, err := rh.router.Query(ctx, "classmate", name, 10)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref{name, want})
	}

	// Kill the primary. No probe runs in between: the router must ride on
	// its last live set and the failover path alone.
	rh.h.ts.Close()

	for round := 0; round < 3; round++ {
		for _, rf := range refs {
			got, err := rh.router.Query(ctx, "classmate", rf.name, 10)
			if err != nil {
				t.Fatalf("read %q failed after primary death: %v", rf.name, err)
			}
			if !reflect.DeepEqual(got, rf.want) {
				t.Fatalf("read %q drifted after primary death:\n got %+v\nwant %+v", rf.name, got, rf.want)
			}
		}
	}
	// Probing with the primary dead keeps the caught-up followers in
	// rotation (their readiness state is their own, not the primary's).
	if live := rh.router.Probe(ctx); live != 2 {
		t.Fatalf("live after primary death = %d, want 2", live)
	}
	// Writes, of course, now fail — the primary owns them.
	if _, err := rh.router.Update(ctx, api.UpdateRequest{
		Nodes: []api.UpdateNode{{Type: "user", Name: "orphan"}},
	}); err == nil {
		t.Fatal("update succeeded with a dead primary")
	}
}

// TestRouterNoFollowersDegradesToPrimary: a router over a bare primary
// behaves like a plain client.
func TestRouterNoFollowersDegradesToPrimary(t *testing.T) {
	h := newHarness(t)
	r := client.NewRouter(h.ts.URL, nil, nil)
	ctx := context.Background()
	if live := r.Probe(ctx); live != 0 {
		t.Fatalf("live = %d, want 0", live)
	}
	resp, err := r.Query(ctx, "classmate", "Kate", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Query != "Kate" {
		t.Fatalf("response = %+v", resp)
	}
	if _, err := r.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if r.Counts()[h.ts.URL] != 1 {
		t.Fatalf("counts = %v", r.Counts())
	}
	if got := len(r.Followers()); got != 0 || r.Primary() == nil {
		t.Fatalf("accessors: %d followers", got)
	}
}

// TestRouterQueryBatchAndRun covers the batched read path and the
// background probe loop end to end.
func TestRouterQueryBatchAndRun(t *testing.T) {
	rh := newRoutedHarness(t, 1)
	for _, f := range rh.followers {
		waitReady(t, f)
	}
	rh.router.ProbeInterval = 10 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rh.router.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for len(rh.router.Live()) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if len(rh.router.Live()) != 1 {
		t.Fatalf("Run never admitted the follower: live = %v", rh.router.Live())
	}

	direct := client.New(rh.h.ts.URL, rh.h.ts.Client())
	want, err := direct.QueryBatch(ctx, "classmate", []string{"Kate", "Bob"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rh.router.QueryBatch(ctx, "classmate", []string{"Kate", "Bob"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("routed batch diverged:\n got %+v\nwant %+v", got, want)
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v", err)
	}
}
