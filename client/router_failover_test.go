package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/api"
	"repro/client"
)

// fakeNode is a stub backend whose role and term are togglable — enough
// to act out a promotion (follower -> primary at a higher term) and a
// deposed zombie without a real replication stack.
type fakeNode struct {
	ts      *httptest.Server
	role    atomic.Value // api.RolePrimary / api.RoleFollower
	term    atomic.Uint64
	ready   atomic.Bool
	upFail  atomic.Bool // update answers 500 internal (ambiguous failure)
	updates atomic.Int64
	lsn     atomic.Uint64
}

func newFakeNode(t *testing.T, role string, term uint64) *fakeNode {
	t.Helper()
	n := &fakeNode{}
	n.role.Store(role)
	n.term.Store(term)
	n.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathReadyz, func(w http.ResponseWriter, r *http.Request) {
		resp := api.ReadyResponse{Status: api.StatusReady, Role: n.role.Load().(string), Term: n.term.Load()}
		code := http.StatusOK
		if !n.ready.Load() {
			resp.Status = api.StatusCatchingUp
			code = http.StatusServiceUnavailable
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	})
	mux.HandleFunc(api.PathUpdate, func(w http.ResponseWriter, r *http.Request) {
		n.updates.Add(1)
		switch {
		case n.role.Load().(string) != api.RolePrimary:
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{ //nolint:errcheck
				Error: api.Error{Code: api.CodeNotPrimary, Message: "read-only replica"}})
		case n.upFail.Load():
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(api.ErrorEnvelope{ //nolint:errcheck
				Error: api.Error{Code: api.CodeInternal, Message: "durable locally but unconfirmed"}})
		default:
			json.NewEncoder(w).Encode(api.UpdateResponse{LSN: n.lsn.Add(1)}) //nolint:errcheck
		}
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

// eventLog collects Router events safely across goroutines.
type eventLog struct {
	mu     sync.Mutex
	events []client.Event
}

func (l *eventLog) record(ev client.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, ev)
}

// find returns the first recorded event of the given type about url.
func (l *eventLog) find(typ, url string) (client.Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Type == typ && ev.URL == url {
			return ev, true
		}
	}
	return client.Event{}, false
}

// TestRouterFollowsPromotion acts out the full failover from the
// router's seat: the configured primary dies, a follower shows up as
// primary at term 2 — writes re-route there without restarting the
// router, the promoted node leaves the READ rotation, and the remaining
// term-1 follower is ejected as stale until it reports the new term.
// Every transition surfaces through OnEvent.
func TestRouterFollowsPromotion(t *testing.T) {
	p := newFakeNode(t, api.RolePrimary, 1)
	f1 := newFakeNode(t, api.RoleFollower, 1)
	f2 := newFakeNode(t, api.RoleFollower, 1)
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL, f2.ts.URL}, nil)
	log := &eventLog{}
	r.OnEvent = log.record
	ctx := context.Background()

	if live := r.Probe(ctx); live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}
	for _, f := range []*fakeNode{f1, f2} {
		if _, ok := log.find(client.EventAdmit, f.ts.URL); !ok {
			t.Fatalf("no admit event for %s: %+v", f.ts.URL, log.events)
		}
	}
	if _, err := r.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "a"}}}); err != nil {
		t.Fatal(err)
	}
	if p.updates.Load() != 1 {
		t.Fatal("pre-failover update missed the configured primary")
	}

	// The primary dies; f1 is promoted at term 2.
	p.ts.Close()
	f1.role.Store(api.RolePrimary)
	f1.term.Store(2)
	if live := r.Probe(ctx); live != 0 {
		t.Fatalf("live after promotion = %d, want 0 (f1 is primary now, f2 is stale)", live)
	}
	if ev, ok := log.find(client.EventPrimaryChange, f1.ts.URL); !ok || ev.Term != 2 {
		t.Fatalf("no primary_change to %s at term 2: %+v", f1.ts.URL, log.events)
	}
	if _, ok := log.find(client.EventEject, f2.ts.URL); !ok {
		t.Fatalf("stale-term follower %s not ejected: %+v", f2.ts.URL, log.events)
	}
	if got := r.Primary().BaseURL(); got != f1.ts.URL {
		t.Fatalf("resolved primary = %s, want %s", got, f1.ts.URL)
	}
	if _, err := r.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "b"}}}); err != nil {
		t.Fatalf("post-failover update: %v", err)
	}
	if f1.updates.Load() != 1 {
		t.Fatal("post-failover update missed the promoted primary")
	}

	// f2 reaches the new term: back in rotation.
	f2.term.Store(2)
	if live := r.Probe(ctx); live != 1 {
		t.Fatalf("live after f2 caught up = %d, want 1", live)
	}
}

// TestRouterUpdateRetriesOnlyProvenFailures: an update refused with 503
// not_primary (the backend proved it applied nothing) triggers one
// re-probe-and-retry at the newly resolved primary; an ambiguous 5xx —
// the backend may have applied the write — is returned to the caller
// with no retry anywhere.
func TestRouterUpdateRetriesOnlyProvenFailures(t *testing.T) {
	// The configured primary was deposed and rejoined as a follower; the
	// real primary is f1 at term 2. No probe has run.
	p := newFakeNode(t, api.RoleFollower, 2)
	f1 := newFakeNode(t, api.RolePrimary, 2)
	r := client.NewRouter(p.ts.URL, []string{f1.ts.URL}, nil)
	ctx := context.Background()
	resp, err := r.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "x"}}})
	if err != nil {
		t.Fatalf("update did not follow the not_primary redirect: %v", err)
	}
	if resp.LSN != 1 || f1.updates.Load() != 1 {
		t.Fatalf("retry did not land on the real primary: resp %+v, f1 saw %d", resp, f1.updates.Load())
	}

	// Ambiguous failure: the resolved primary 500s. One attempt, no retry.
	f1.upFail.Store(true)
	if _, err := r.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "y"}}}); err == nil {
		t.Fatal("ambiguous 5xx reported success")
	}
	if got := f1.updates.Load(); got != 2 {
		t.Fatalf("ambiguous failure was retried: primary saw %d updates, want 2", got)
	}
	if got := p.updates.Load(); got != 1 {
		t.Fatalf("ambiguous failure retried on another backend: %d", got)
	}
}
