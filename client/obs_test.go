package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// TestTraceHeaderSent: a trace ID attached via client.WithTrace rides the
// request header on every call; a bare context sends none.
func TestTraceHeaderSent(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(api.HeaderTrace))
		fmt.Fprint(w, `{"epoch":1}`)
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())

	if _, err := c.Stats(client.WithTrace(context.Background(), "trace-cli-1")); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Load().(string); v != "trace-cli-1" {
		t.Fatalf("server saw trace %q, want trace-cli-1", v)
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Load().(string); v != "" {
		t.Fatalf("bare context sent trace %q, want none", v)
	}
}

// TestErrorCarriesTrace: a structured error from a response whose header
// carries a trace ID surfaces it in the message — once, even when the
// envelope already passed through a tier that stamped it.
func TestErrorCarriesTrace(t *testing.T) {
	stamped := false
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.HeaderTrace, "trace-err-9")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		msg := "no such class"
		if stamped { // a relayed envelope already carrying a trace suffix
			msg += " [trace trace-err-9]"
		}
		fmt.Fprintf(w, `{"error":{"code":"bad_request","message":%q}}`, msg)
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())

	_, err := c.Query(context.Background(), "c", "q", 1)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *api.Error", err)
	}
	if want := "no such class [trace trace-err-9]"; apiErr.Message != want {
		t.Fatalf("message = %q, want %q", apiErr.Message, want)
	}

	stamped = true
	_, err = c.Query(context.Background(), "c", "q", 1)
	if !errors.As(err, &apiErr) {
		t.Fatalf("error = %v, want *api.Error", err)
	}
	if n := strings.Count(apiErr.Message, "[trace "); n != 1 {
		t.Fatalf("trace stamped %d times in %q, want exactly once", n, apiErr.Message)
	}
}

// TestClientMetrics: Metrics fetches the raw exposition with the client's
// retry policy — transient 5xx retried, 4xx immediate.
func TestClientMetrics(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		if n.Add(1) < 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "# HELP x y\n# TYPE x counter\nx 1\n")
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	c.Retries = 2
	c.RetryBackoff = time.Millisecond

	expo, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo, "x 1") || n.Load() != 2 {
		t.Fatalf("exposition %q after %d attempts", expo, n.Load())
	}

	bad := httptest.NewServer(http.NotFoundHandler())
	defer bad.Close()
	cb := client.New(bad.URL, bad.Client())
	cb.Retries = 3
	cb.RetryBackoff = time.Millisecond
	if _, err := cb.Metrics(context.Background()); err == nil {
		t.Fatal("metrics against a server without the endpoint succeeded")
	}
}
