package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// DefaultProbeInterval is how often Run re-probes every replica's
// readiness.
const DefaultProbeInterval = 500 * time.Millisecond

// Event types reported through Router.OnEvent.
const (
	// EventAdmit: a follower (re-)entered the read rotation.
	EventAdmit = "admit"
	// EventEject: a follower left the read rotation (failed read, failed
	// probe, lag, fencing, or a stale term).
	EventEject = "eject"
	// EventPrimaryChange: the router resolved a different backend as the
	// primary — a promotion happened (or the old primary came back).
	EventPrimaryChange = "primary_change"
)

// Event is one routing transition, delivered to OnEvent.
type Event struct {
	Type   string // EventAdmit, EventEject, EventPrimaryChange
	URL    string // the backend the event is about
	Term   uint64 // the backend's term at the observation (0 if unknown)
	Reason string // human-readable cause
}

// Router is the replica-aware serving strategy over one primary and N
// follower base URLs. It polls /v1/readyz on EVERY backend to maintain
// (a) the live set of caught-up followers and (b) which backend is the
// current primary: each probe trusts the highest-term backend reporting
// the primary role, so when a follower is promoted after the configured
// primary dies, writes re-route to it without restarting the router.
// Reads (Query, QueryBatch, Proximity) spread round-robin across the
// live followers with failover — a follower that errors is ejected from
// rotation on the spot and the request moves to the next live follower,
// then to the resolved primary — and writes (Update) plus authoritative
// reads (Stats) pin to the resolved primary. An ejected or lagging
// follower re-enters rotation at the next successful readiness probe; a
// follower reporting a term older than the newest seen stays out (it is
// still following a deposed primary).
//
// With zero followers (or none caught up) every request goes to the
// primary, so a Router over a single server degrades to a plain Client.
//
// Safe for concurrent use. Start Run in a goroutine for continuous
// probing, or call Probe directly for deterministic control (tests,
// benchmarks, one-shot tools).
type Router struct {
	clients []*Client // [0] = configured primary, [1+i] = followers[i]

	// ProbeInterval is the pause between Run's readiness sweeps.
	ProbeInterval time.Duration

	// OnEvent, when set (before Run/Probe), observes routing transitions:
	// follower admissions/ejections and primary changes. Called
	// synchronously from Probe and the read failover path without any
	// router lock held; keep it fast and do not call back into the
	// router from it.
	OnEvent func(Event)

	mu      sync.RWMutex
	cur     int      // index into clients of the resolved primary
	maxTerm uint64   // newest term observed on any backend
	live    []bool   // live[i]: followers[i] is caught up and in rotation
	gen     []uint64 // gen[i]: bumped by each eject of followers[i]; lets a
	// probe detect an ejection that happened after its readiness sample
	// was taken, so a stale "ready" never resurrects a just-dead replica

	rr     atomic.Uint64   // round-robin cursor over the live set
	served []atomic.Uint64 // reads served per backend; [0]=primary, [1+i]=followers[i]
}

// NewRouter builds a router over the primary at primaryURL and the given
// follower base URLs. A nil hc gets one shared http.Client with
// DefaultTimeout. Followers start OUT of rotation (nothing is known
// about their lag yet): call Probe once — or start Run — before
// expecting reads to spread.
func NewRouter(primaryURL string, followerURLs []string, hc *http.Client) *Router {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	r := &Router{
		ProbeInterval: DefaultProbeInterval,
		live:          make([]bool, len(followerURLs)),
		gen:           make([]uint64, len(followerURLs)),
		served:        make([]atomic.Uint64, 1+len(followerURLs)),
	}
	// Per-backend retries are disabled: the router IS the retry policy.
	// A failed read fails over to the next replica immediately instead of
	// hammering the same dead one through the backoff loop.
	for _, u := range append([]string{primaryURL}, followerURLs...) {
		c := New(u, hc)
		c.Retries = 0
		r.clients = append(r.clients, c)
	}
	return r
}

// Primary returns the client of the CURRENT resolved primary (writes,
// authoritative reads) — the configured one until a probe observes a
// promotion.
func (r *Router) Primary() *Client {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.clients[r.cur]
}

// Followers returns the follower clients in rotation order.
func (r *Router) Followers() []*Client { return r.clients[1:] }

// Run probes every backend's readiness each ProbeInterval until ctx
// ends, keeping the live set and the resolved primary fresh: lagging or
// dead followers leave rotation, caught-up ones (re-)enter, and a
// promoted follower takes over the write role. Returns ctx.Err().
func (r *Router) Run(ctx context.Context) error {
	for {
		r.Probe(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.ProbeInterval):
		}
	}
}

// normTerm maps the wire encoding (0 = pre-term server) to term 1.
func normTerm(t uint64) uint64 {
	if t == 0 {
		return 1
	}
	return t
}

// Probe polls /v1/readyz on every backend concurrently, resolves the
// primary, and installs the resulting live set, returning how many
// followers are in rotation. A follower is live when its probe succeeds
// and reports StatusReady at the newest observed term — a ready
// follower at an OLDER term is still tracking a deposed primary and
// would serve a forked history. A backend reporting the primary role is
// trusted as THE primary if its term is the highest among such claims;
// absent any claim (the primary just died, nobody promoted yet) the
// previous resolution stands, so in-flight writes keep a target.
// A follower stays out of rotation if a read ejected it while this
// probe's sample was in flight: that ejection is newer information than
// the sample (a stale "ready" must not resurrect a replica that just
// died).
func (r *Router) Probe(ctx context.Context) int {
	r.mu.RLock()
	before := append([]uint64(nil), r.gen...)
	r.mu.RUnlock()
	type sample struct {
		resp api.ReadyResponse
		err  error
	}
	samples := make([]sample, len(r.clients))
	var wg sync.WaitGroup
	for i, c := range r.clients {
		wg.Add(1)
		go func(i int, c *Client) {
			defer wg.Done()
			samples[i].resp, samples[i].err = c.Ready(ctx)
		}(i, c)
	}
	wg.Wait()

	var events []Event
	n := 0
	r.mu.Lock()
	for _, s := range samples {
		if s.err == nil && normTerm(s.resp.Term) > r.maxTerm {
			r.maxTerm = normTerm(s.resp.Term)
		}
	}
	// Resolve the primary: highest-term backend claiming the role and
	// able to take writes (a wal_failed primary claims the role but
	// can't).
	best, bestTerm := -1, uint64(0)
	for i, s := range samples {
		if s.err != nil || s.resp.Role != api.RolePrimary || !s.resp.Ready() {
			continue
		}
		if t := normTerm(s.resp.Term); best < 0 || t > bestTerm {
			best, bestTerm = i, t
		}
	}
	if best >= 0 && best != r.cur {
		r.cur = best
		events = append(events, Event{
			Type: EventPrimaryChange, URL: r.clients[best].BaseURL(), Term: bestTerm,
			Reason: fmt.Sprintf("backend reports primary role at term %d", bestTerm),
		})
	}
	for i := range r.live {
		s := samples[1+i]
		ok := s.err == nil && s.resp.Ready() && s.resp.Role == api.RoleFollower &&
			normTerm(s.resp.Term) >= r.maxTerm
		if r.gen[i] != before[i] {
			ok = false // ejected mid-sweep; this sample predates the death
		}
		if ok != r.live[i] {
			ev := Event{URL: r.clients[1+i].BaseURL(), Term: normTerm(s.resp.Term)}
			if ok {
				ev.Type, ev.Reason = EventAdmit, "probe reports ready at current term"
			} else {
				ev.Type, ev.Reason = EventEject, ejectReason(s.err, s.resp, r.maxTerm)
			}
			events = append(events, ev)
		}
		r.live[i] = ok
		if ok {
			n++
		}
	}
	r.mu.Unlock()
	r.emit(events)
	return n
}

// ejectReason names why a probe sample takes a follower out of rotation.
func ejectReason(err error, resp api.ReadyResponse, maxTerm uint64) string {
	switch {
	case err != nil:
		return fmt.Sprintf("probe failed: %v", err)
	case resp.Role != api.RoleFollower:
		return fmt.Sprintf("role is %s", resp.Role)
	case normTerm(resp.Term) < maxTerm:
		return fmt.Sprintf("stale term %d (newest is %d)", normTerm(resp.Term), maxTerm)
	default:
		return fmt.Sprintf("status %s (lag %d)", resp.Status, resp.Lag)
	}
}

func (r *Router) emit(events []Event) {
	if r.OnEvent == nil {
		return
	}
	for _, ev := range events {
		r.OnEvent(ev)
	}
}

// Live returns the indices of the followers currently in rotation.
func (r *Router) Live() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var idx []int
	for i, ok := range r.live {
		if ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// eject drops follower i from rotation until a probe whose readiness
// sample postdates this call re-admits it.
func (r *Router) eject(i int, cause error) {
	r.mu.Lock()
	r.live[i] = false
	r.gen[i]++
	r.mu.Unlock()
	r.emit([]Event{{
		Type: EventEject, URL: r.clients[1+i].BaseURL(),
		Reason: fmt.Sprintf("read failed: %v", cause),
	}})
}

// Counts reports how many reads each backend has served, keyed by base
// URL — the primary included. Useful for verifying spread in tests,
// benchmarks and smoke scripts.
func (r *Router) Counts() map[string]uint64 {
	out := make(map[string]uint64, len(r.clients))
	for i, c := range r.clients {
		out[c.BaseURL()] += r.served[i].Load()
	}
	return out
}

// Query answers one ranked query through the read rotation.
func (r *Router) Query(ctx context.Context, class, query string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Query(ctx, class, query, k)
		return err
	})
	return out, err
}

// QueryBatch answers a batch of queries through the read rotation.
func (r *Router) QueryBatch(ctx context.Context, class string, queries []string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	// The caller's mistakes are rejected before the rotation is touched:
	// Client.QueryBatch fails these locally with a plain error, which the
	// failover path would misread as a per-replica transport failure and
	// eject every live follower over one malformed call.
	if len(queries) == 0 {
		return out, fmt.Errorf("client: empty query batch")
	}
	if len(queries) > api.MaxBatch {
		return out, fmt.Errorf("client: batch of %d queries exceeds limit %d", len(queries), api.MaxBatch)
	}
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.QueryBatch(ctx, class, queries, k)
		return err
	})
	return out, err
}

// Proximity scores one pair through the read rotation.
func (r *Router) Proximity(ctx context.Context, class, x, y string) (api.ProximityResponse, error) {
	var out api.ProximityResponse
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Proximity(ctx, class, x, y)
		return err
	})
	return out, err
}

// Update pins to the resolved primary. If the attempt fails in a way
// that proves the write did NOT happen — the backend is unreachable, or
// it answered 503 not_primary (it is a follower; followers refuse
// before applying) — the router re-probes, and if that resolves a
// DIFFERENT primary (a promotion it hadn't noticed), retries exactly
// once there. Ambiguous failures (a 5xx from a backend that may have
// applied the update) are never retried: an update is not idempotent.
func (r *Router) Update(ctx context.Context, req api.UpdateRequest) (api.UpdateResponse, error) {
	c := r.Primary()
	out, err := c.Update(ctx, req)
	if err == nil || !writeSurelyFailed(err) || ctx.Err() != nil {
		return out, err
	}
	r.Probe(ctx)
	if c2 := r.Primary(); c2 != c {
		return c2.Update(ctx, req)
	}
	return out, err
}

// writeSurelyFailed reports whether an Update error proves the update
// was not applied anywhere — the only condition under which retrying it
// elsewhere cannot double-apply.
func writeSurelyFailed(err error) bool {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.Code == api.CodeNotPrimary
	}
	// Transport-level failure: the request never got a response. A
	// connection refused / reset before the response proves nothing was
	// acked; the pre-response failure modes where the server DID apply
	// (it crashed mid-handling) also killed that server's unacked state.
	return true
}

// Stats pins to the resolved primary: per-replica stats differ by
// catch-up state, and callers of a router want the authoritative
// position. Use Followers()[i].Stats for a specific replica.
func (r *Router) Stats(ctx context.Context) (api.StatsResponse, error) {
	return r.Primary().Stats(ctx)
}

// read runs one read against the rotation: each live follower once,
// starting at the round-robin cursor, then the resolved primary as the
// final fallback. A follower failing with a 5xx or a transport error is
// ejected from rotation immediately (the next probe re-admits it once
// caught up); a 4xx — the request itself is wrong — returns straight to
// the caller, because every replica would refuse it identically.
func (r *Router) read(ctx context.Context, call func(*Client) error) error {
	idx := r.Live()
	var lastErr error
	if len(idx) > 0 {
		// Reduce the cursor modulo the live-set size while still uint64:
		// a plain int() of a wrapped counter would go negative and a
		// negative % in Go stays negative — a panic-grade index.
		start := int((r.rr.Add(1) - 1) % uint64(len(idx)))
		for a := 0; a < len(idx); a++ {
			i := idx[(start+a)%len(idx)]
			err := call(r.clients[1+i])
			if err == nil {
				r.served[1+i].Add(1)
				return nil
			}
			if !failedOver(err) || ctx.Err() != nil {
				return err
			}
			lastErr = err
			r.eject(i, err)
		}
	}
	r.mu.RLock()
	cur := r.cur
	r.mu.RUnlock()
	if err := call(r.clients[cur]); err != nil {
		if lastErr != nil && failedOver(err) {
			return fmt.Errorf("%w (followers also failed: %v)", err, lastErr)
		}
		return err
	}
	r.served[cur].Add(1)
	return nil
}

// ReadTargets returns up to max distinct backends for one read, in the
// order the rotation would try them: the live followers starting at the
// round-robin cursor (advanced once per call, so successive calls
// spread), then the resolved primary as the final fallback — the same
// candidate order read uses, exposed for callers that drive the HTTP
// exchange themselves (the semproxy edge tier forwards raw bodies and
// hedges stragglers, which the closure-based read path can't express).
// With no live followers the result is just the primary. Callers report
// each attempt's outcome through ReportRead so ejections and serve
// counts keep working.
func (r *Router) ReadTargets(max int) []*Client {
	if max <= 0 {
		return nil
	}
	idx := r.Live()
	out := make([]*Client, 0, len(idx)+1)
	if len(idx) > 0 {
		start := int((r.rr.Add(1) - 1) % uint64(len(idx)))
		for a := 0; a < len(idx) && len(out) < max; a++ {
			out = append(out, r.clients[1+idx[(start+a)%len(idx)]])
		}
	}
	// The resolved primary can BE one of the live followers mid-promotion
	// (cur moves before the probe flips its role); don't list it twice.
	if p := r.Primary(); len(out) < max && !slices.Contains(out, p) {
		out = append(out, p)
	}
	return out
}

// ReportRead records the outcome of a read the caller performed itself
// against a backend obtained from ReadTargets: success bumps the
// backend's serve count (Counts), and a failover-grade failure (5xx or
// transport) ejects a follower from rotation exactly as the built-in
// read path would — the primary is never ejected (it is the fallback,
// and probes own the primary's fate), and 4xx outcomes are the request's
// fault, not the replica's. Do NOT report attempts the caller cancelled
// itself (a hedge loser): its context error is indistinguishable from a
// dead backend and would eject a healthy replica.
func (r *Router) ReportRead(c *Client, err error) {
	for i, rc := range r.clients {
		if rc != c {
			continue
		}
		if err == nil {
			r.served[i].Add(1)
		} else if i > 0 && failedOver(err) {
			r.eject(i-1, err)
		}
		return
	}
}

// failedOver reports whether an error should move the request to the
// next replica: transport failures and 5xx do, client mistakes (4xx)
// do not.
func failedOver(err error) bool {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500
	}
	return true // transport-level failure
}
