package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
)

// DefaultProbeInterval is how often Run re-probes every replica's
// readiness.
const DefaultProbeInterval = 500 * time.Millisecond

// Router is the replica-aware serving strategy over one primary and N
// follower base URLs. It polls /v1/readyz to maintain the live set of
// caught-up followers, spreads reads (Query, QueryBatch, Proximity)
// round-robin across that set with failover — a follower that errors is
// ejected from rotation on the spot and the request moves to the next
// live follower, then to the primary — and pins writes (Update) plus
// authoritative reads (Stats) to the primary. An ejected or lagging
// follower re-enters rotation at the next successful readiness probe.
//
// With zero followers (or none caught up) every request goes to the
// primary, so a Router over a single server degrades to a plain Client.
//
// Safe for concurrent use. Start Run in a goroutine for continuous
// probing, or call Probe directly for deterministic control (tests,
// benchmarks, one-shot tools).
type Router struct {
	primary   *Client
	followers []*Client

	// ProbeInterval is the pause between Run's readiness sweeps.
	ProbeInterval time.Duration

	mu   sync.RWMutex
	live []bool   // live[i]: followers[i] is caught up and in rotation
	gen  []uint64 // gen[i]: bumped by each eject of followers[i]; lets a
	// probe detect an ejection that happened after its readiness sample
	// was taken, so a stale "ready" never resurrects a just-dead replica

	rr     atomic.Uint64   // round-robin cursor over the live set
	served []atomic.Uint64 // reads served per backend; [0]=primary, [1+i]=followers[i]
}

// NewRouter builds a router over the primary at primaryURL and the given
// follower base URLs. A nil hc gets one shared http.Client with
// DefaultTimeout. Followers start OUT of rotation (nothing is known
// about their lag yet): call Probe once — or start Run — before
// expecting reads to spread.
func NewRouter(primaryURL string, followerURLs []string, hc *http.Client) *Router {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	r := &Router{
		primary:       New(primaryURL, hc),
		ProbeInterval: DefaultProbeInterval,
		live:          make([]bool, len(followerURLs)),
		gen:           make([]uint64, len(followerURLs)),
		served:        make([]atomic.Uint64, 1+len(followerURLs)),
	}
	// Per-backend retries are disabled: the router IS the retry policy.
	// A failed read fails over to the next replica immediately instead of
	// hammering the same dead one through the backoff loop.
	r.primary.Retries = 0
	for _, u := range followerURLs {
		c := New(u, hc)
		c.Retries = 0
		r.followers = append(r.followers, c)
	}
	return r
}

// Primary returns the primary's client (writes, authoritative reads).
func (r *Router) Primary() *Client { return r.primary }

// Followers returns the follower clients in rotation order.
func (r *Router) Followers() []*Client { return r.followers }

// Run probes every follower's readiness each ProbeInterval until ctx
// ends, keeping the live set fresh: lagging or dead followers leave
// rotation, caught-up ones (re-)enter. Returns ctx.Err().
func (r *Router) Run(ctx context.Context) error {
	for {
		r.Probe(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(r.ProbeInterval):
		}
	}
}

// Probe polls /v1/readyz on every follower concurrently and installs the
// resulting live set, returning how many followers are in rotation. A
// follower is live when the probe succeeds and reports StatusReady
// (bootstrapped, polled, zero lag) — unless a read ejected it while this
// probe's sample was in flight: that ejection is newer information than
// the sample, so the follower stays out until the NEXT sweep re-observes
// it (a stale "ready" must not resurrect a replica that just died).
func (r *Router) Probe(ctx context.Context) int {
	if len(r.followers) == 0 {
		return 0
	}
	r.mu.RLock()
	before := append([]uint64(nil), r.gen...)
	r.mu.RUnlock()
	fresh := make([]bool, len(r.followers))
	var wg sync.WaitGroup
	for i, f := range r.followers {
		wg.Add(1)
		go func(i int, f *Client) {
			defer wg.Done()
			ready, err := f.Ready(ctx)
			fresh[i] = err == nil && ready.Ready()
		}(i, f)
	}
	wg.Wait()
	n := 0
	r.mu.Lock()
	for i, ok := range fresh {
		if r.gen[i] != before[i] {
			ok = false // ejected mid-sweep; this sample predates the death
		}
		r.live[i] = ok
		if ok {
			n++
		}
	}
	r.mu.Unlock()
	return n
}

// Live returns the indices of the followers currently in rotation.
func (r *Router) Live() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var idx []int
	for i, ok := range r.live {
		if ok {
			idx = append(idx, i)
		}
	}
	return idx
}

// eject drops follower i from rotation until a probe whose readiness
// sample postdates this call re-admits it.
func (r *Router) eject(i int) {
	r.mu.Lock()
	r.live[i] = false
	r.gen[i]++
	r.mu.Unlock()
}

// Counts reports how many reads each backend has served, keyed by base
// URL — the primary included. Useful for verifying spread in tests,
// benchmarks and smoke scripts.
func (r *Router) Counts() map[string]uint64 {
	out := make(map[string]uint64, 1+len(r.followers))
	out[r.primary.BaseURL()] = r.served[0].Load()
	for i, f := range r.followers {
		out[f.BaseURL()] += r.served[1+i].Load()
	}
	return out
}

// Query answers one ranked query through the read rotation.
func (r *Router) Query(ctx context.Context, class, query string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Query(ctx, class, query, k)
		return err
	})
	return out, err
}

// QueryBatch answers a batch of queries through the read rotation.
func (r *Router) QueryBatch(ctx context.Context, class string, queries []string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	// The caller's mistakes are rejected before the rotation is touched:
	// Client.QueryBatch fails these locally with a plain error, which the
	// failover path would misread as a per-replica transport failure and
	// eject every live follower over one malformed call.
	if len(queries) == 0 {
		return out, fmt.Errorf("client: empty query batch")
	}
	if len(queries) > api.MaxBatch {
		return out, fmt.Errorf("client: batch of %d queries exceeds limit %d", len(queries), api.MaxBatch)
	}
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.QueryBatch(ctx, class, queries, k)
		return err
	})
	return out, err
}

// Proximity scores one pair through the read rotation.
func (r *Router) Proximity(ctx context.Context, class, x, y string) (api.ProximityResponse, error) {
	var out api.ProximityResponse
	err := r.read(ctx, func(c *Client) error {
		var err error
		out, err = c.Proximity(ctx, class, x, y)
		return err
	})
	return out, err
}

// Update pins to the primary — the one replica that owns writes.
func (r *Router) Update(ctx context.Context, req api.UpdateRequest) (api.UpdateResponse, error) {
	return r.primary.Update(ctx, req)
}

// Stats pins to the primary: per-replica stats differ by catch-up state,
// and callers of a router want the authoritative position. Use
// Followers()[i].Stats for a specific replica.
func (r *Router) Stats(ctx context.Context) (api.StatsResponse, error) {
	return r.primary.Stats(ctx)
}

// read runs one read against the rotation: each live follower once,
// starting at the round-robin cursor, then the primary as the final
// fallback. A follower failing with a 5xx or a transport error is
// ejected from rotation immediately (the next probe re-admits it once
// caught up); a 4xx — the request itself is wrong — returns straight to
// the caller, because every replica would refuse it identically.
func (r *Router) read(ctx context.Context, call func(*Client) error) error {
	idx := r.Live()
	var lastErr error
	if len(idx) > 0 {
		// Reduce the cursor modulo the live-set size while still uint64:
		// a plain int() of a wrapped counter would go negative and a
		// negative % in Go stays negative — a panic-grade index.
		start := int((r.rr.Add(1) - 1) % uint64(len(idx)))
		for a := 0; a < len(idx); a++ {
			i := idx[(start+a)%len(idx)]
			err := call(r.followers[i])
			if err == nil {
				r.served[1+i].Add(1)
				return nil
			}
			if !failedOver(err) || ctx.Err() != nil {
				return err
			}
			lastErr = err
			r.eject(i)
		}
	}
	if err := call(r.primary); err != nil {
		if lastErr != nil && failedOver(err) {
			return fmt.Errorf("%w (followers also failed: %v)", err, lastErr)
		}
		return err
	}
	r.served[0].Add(1)
	return nil
}

// failedOver reports whether an error should move the request to the
// next replica: transport failures and 5xx do, client mistakes (4xx)
// do not.
func failedOver(err error) bool {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.Status >= 500
	}
	return true // transport-level failure
}
