package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	semprox "repro"
	"repro/api"
	"repro/client"
	"repro/internal/fixtures"
	"repro/internal/mining"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wal"
)

// harness is a trained durable primary behind a real HTTP server — the
// stack the client is built to speak to.
type harness struct {
	eng *semprox.Engine
	g   *semprox.Graph
	log *wal.WAL
	srv *server.Server
	ts  *httptest.Server
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	g := fixtures.Toy()
	opts := semprox.DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := semprox.NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("classmate", []semprox.Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	})
	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	srv := server.New(eng)
	srv.AttachWAL(w)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &harness{eng: eng, g: g, log: w, srv: srv, ts: ts}
}

func (h *harness) client() *client.Client { return client.New(h.ts.URL, h.ts.Client()) }

func TestQueryMatchesEngine(t *testing.T) {
	h := newHarness(t)
	c := h.client()
	ctx := context.Background()
	want, err := h.eng.Query("classmate", h.g.NodeByName("Kate"), 5)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, "classmate", "Kate", 5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Class != "classmate" || resp.K != 5 || len(resp.Results) != 1 {
		t.Fatalf("response = %+v", resp)
	}
	got := resp.Results[0].Results
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i, r := range got {
		if semprox.NodeID(r.Node) != want[i].Node || r.Score != want[i].Score ||
			r.Name != h.g.Name(want[i].Node) {
			t.Fatalf("result[%d] = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestQueryBatchMatchesEngine(t *testing.T) {
	h := newHarness(t)
	ctx := context.Background()
	names := []string{"Kate", "Bob", "Alice"}
	qs := make([]semprox.NodeID, len(names))
	for i, n := range names {
		qs[i] = h.g.NodeByName(n)
	}
	want, err := h.eng.QueryBatch("classmate", qs, 3)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.client().QueryBatch(ctx, "classmate", names, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(names) {
		t.Fatalf("%d rankings, want %d", len(resp.Results), len(names))
	}
	for i, qr := range resp.Results {
		if qr.Query != names[i] || len(qr.Results) != len(want[i]) {
			t.Fatalf("ranking[%d] = %+v", i, qr)
		}
		for j, r := range qr.Results {
			if semprox.NodeID(r.Node) != want[i][j].Node || r.Score != want[i][j].Score {
				t.Fatalf("ranking[%d][%d] = %+v, want %+v", i, j, r, want[i][j])
			}
		}
	}

	if _, err := h.client().QueryBatch(ctx, "classmate", nil, 3); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := h.client().QueryBatch(ctx, "classmate", make([]string, api.MaxBatch+1), 3); err == nil {
		t.Fatal("oversized batch sent")
	}
}

func TestProximityMatchesEngine(t *testing.T) {
	h := newHarness(t)
	want, err := h.eng.Proximity("classmate", h.g.NodeByName("Kate"), h.g.NodeByName("Jay"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.client().Proximity(context.Background(), "classmate", "Kate", "Jay")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Proximity != want || resp.X != "Kate" || resp.Y != "Jay" {
		t.Fatalf("proximity = %+v, want %v", resp, want)
	}
}

// TestStructuredErrors pins the error contract: every non-2xx with an
// envelope surfaces as *api.Error carrying the machine-readable code and
// the HTTP status.
func TestStructuredErrors(t *testing.T) {
	h := newHarness(t)
	c := h.client()
	ctx := context.Background()
	cases := []struct {
		name   string
		call   func() error
		status int
		code   string
	}{
		{"unknown class", func() error { _, err := c.Query(ctx, "nope", "Kate", 5); return err },
			http.StatusNotFound, api.CodeClassNotFound},
		{"unknown node", func() error { _, err := c.Query(ctx, "classmate", "Nobody", 5); return err },
			http.StatusNotFound, api.CodeNodeNotFound},
		{"negative k", func() error { _, err := c.Query(ctx, "classmate", "Kate", -3); return err },
			http.StatusNotFound, api.CodeNodeNotFound}, // -3 normalizes to 0 = default k; "Nobody" style mistakes dominate
		{"bad proximity", func() error { _, err := c.Proximity(ctx, "classmate", "Kate", "Nobody"); return err },
			http.StatusNotFound, api.CodeNodeNotFound},
		{"bad update", func() error {
			_, err := c.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "starship", Name: "x"}}})
			return err
		}, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if tc.name == "negative k" {
				// Normalized to the default k: the call succeeds.
				if err != nil {
					t.Fatalf("negative k: %v", err)
				}
				return
			}
			var apiErr *api.Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("error %v (%T) is not *api.Error", err, err)
			}
			if apiErr.Status != tc.status || apiErr.Code != tc.code {
				t.Fatalf("error = %+v, want status %d code %s", apiErr, tc.status, tc.code)
			}
		})
	}
}

func TestUpdateStatsHealthClassesReady(t *testing.T) {
	h := newHarness(t)
	c := h.client()
	ctx := context.Background()

	if _, err := c.Update(ctx, api.UpdateRequest{}); err == nil {
		t.Fatal("empty update sent")
	}
	big := api.UpdateRequest{Edges: make([]api.UpdateEdge, api.MaxUpdate+1)}
	if _, err := c.Update(ctx, big); err == nil {
		t.Fatal("oversized update sent")
	}

	ur, err := c.Update(ctx, api.UpdateRequest{
		Nodes: []api.UpdateNode{{Type: "user", Name: "zoe"}},
		Edges: []api.UpdateEdge{{U: "zoe", V: "Kate"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ur.LSN != 1 || ur.Epoch != 1 || ur.NodesAdded != 1 || ur.EdgesAdded != 1 {
		t.Fatalf("update = %+v", ur)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.LSN != 1 || st.Nodes != h.g.NumNodes()+1 {
		t.Fatalf("stats = %+v", st)
	}

	hr, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Nodes != h.g.NumNodes()+1 {
		t.Fatalf("health = %+v", hr)
	}

	classes, err := c.Classes(ctx)
	if err != nil || !reflect.DeepEqual(classes, []string{"classmate"}) {
		t.Fatalf("classes = %v (%v)", classes, err)
	}

	ready, err := c.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ready.Ready() || ready.Role != api.RolePrimary || ready.LSN != 1 {
		t.Fatalf("ready = %+v", ready)
	}
}

// TestReadyDecodes503 pins that a catching-up replica's 503 readyz body
// is a decoded response, not an error — the Router depends on reading
// lag from it.
func TestReadyDecodes503(t *testing.T) {
	h := newHarness(t)
	fsrv := server.New(h.eng)
	fsrv.SetFollower(replica.NewFollower(h.ts.URL, h.ts.Client()))
	fts := httptest.NewServer(fsrv)
	defer fts.Close()

	ready, err := client.New(fts.URL, fts.Client()).Ready(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ready.Ready() || ready.Status != api.StatusCatchingUp || ready.Role != api.RoleFollower {
		t.Fatalf("ready = %+v, want catching_up follower", ready)
	}
}

func TestReplicateSinceAndSnapshot(t *testing.T) {
	h := newHarness(t)
	c := h.client()
	ctx := context.Background()
	if _, err := c.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "r1"}}}); err != nil {
		t.Fatal(err)
	}

	sr, err := c.ReplicateSince(ctx, 0, 0, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sr.LastLSN != 1 || len(sr.Records) != 1 || sr.Records[0].LSN != 1 {
		t.Fatalf("since = %+v", sr)
	}

	// A caught-up long poll returns empty without erroring, even when the
	// wait exceeds the http.Client timeout (the client extends the
	// deadline past the poll).
	short := client.New(h.ts.URL, &http.Client{Timeout: 80 * time.Millisecond})
	sr, err = short.ReplicateSince(ctx, 1, 1, 10, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Records) != 0 || sr.LastLSN != 1 {
		t.Fatalf("caught-up since = %+v", sr)
	}

	body, err := c.ReplicateSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer body.Close()
	loaded, err := semprox.LoadEngine(body)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.LSN() != 1 {
		t.Fatalf("snapshot LSN = %d, want 1", loaded.LSN())
	}

	// Snapshot from a server with no WAL: the structured 503 surfaces.
	plain := httptest.NewServer(server.New(h.eng))
	defer plain.Close()
	_, err = client.New(plain.URL, plain.Client()).ReplicateSnapshot(ctx)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeReplicationDisabled {
		t.Fatalf("snapshot without WAL: %v", err)
	}
}

// TestRetryOn5xx: a read is retried through transient 5xx responses; a
// write is not; a 4xx is never retried.
func TestRetryOn5xx(t *testing.T) {
	var gets, posts, bads atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == api.PathStats:
			if gets.Add(1) < 3 {
				http.Error(w, "transient", http.StatusInternalServerError)
				return
			}
			fmt.Fprint(w, `{"epoch":7}`)
		case r.URL.Path == api.PathUpdate:
			posts.Add(1)
			http.Error(w, "down", http.StatusInternalServerError)
		default:
			bads.Add(1)
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":{"code":"bad_request","message":"no"}}`)
		}
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	c.RetryBackoff = time.Millisecond
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats after retries: %v", err)
	}
	if st.Epoch != 7 || gets.Load() != 3 {
		t.Fatalf("epoch %d after %d attempts, want 7 after 3", st.Epoch, gets.Load())
	}

	_, err = c.Update(ctx, api.UpdateRequest{Nodes: []api.UpdateNode{{Type: "user", Name: "x"}}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("update error = %v", err)
	}
	if posts.Load() != 1 {
		t.Fatalf("update attempted %d times, want 1 (writes never retry)", posts.Load())
	}

	_, err = c.Query(ctx, "c", "q", 1)
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeBadRequest {
		t.Fatalf("query error = %v", err)
	}
	if bads.Load() != 1 {
		t.Fatalf("4xx attempted %d times, want 1 (client errors never retry)", bads.Load())
	}
}

// TestRetriesExhausted: a persistently failing read surfaces the last
// 5xx as *api.Error after Retries+1 attempts.
func TestRetriesExhausted(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.Add(1)
		http.Error(w, "wedged", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := client.New(ts.URL, ts.Client())
	c.Retries = 2
	c.RetryBackoff = time.Millisecond
	_, err := c.Stats(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("error = %v", err)
	}
	// The non-envelope body was synthesized into the internal code.
	if apiErr.Code != api.CodeInternal {
		t.Fatalf("code = %s, want %s", apiErr.Code, api.CodeInternal)
	}
	if n.Load() != 3 {
		t.Fatalf("%d attempts, want 3", n.Load())
	}
}

// TestTransportErrorSurfaces: a dead server yields a plain (non-api)
// error after the retries, and context cancellation cuts the loop short.
func TestTransportErrorSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	c := client.New(url, nil)
	c.Retries = 1
	c.RetryBackoff = time.Millisecond
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("stats against a dead server succeeded")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("stats with canceled context succeeded")
	}
}

func TestBaseURLTrimsSlash(t *testing.T) {
	c := client.New("http://x:1/", nil)
	if c.BaseURL() != "http://x:1" {
		t.Fatalf("base = %q", c.BaseURL())
	}
}
