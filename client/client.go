// Package client is the typed Go client of the semprox /v1 API — the
// consumer half of the api package's wire contract. Client speaks to one
// server: single and batched queries, proximity, live updates, stats,
// health, readiness, and the replication feed, all context-plumbed, with
// a default request timeout and bounded retry-on-5xx for read-only
// calls. Router (router.go) composes Clients into replica-aware serving:
// reads spread round-robin across caught-up followers with failover to
// the primary, writes pin to the primary.
//
// Errors: any response carrying the api error envelope is returned as
// *api.Error (with the HTTP status attached), so callers branch on
// machine-readable codes:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeNodeNotFound { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/api"
	"repro/internal/obs"
)

// DefaultTimeout bounds one HTTP request (connection + response) when
// the caller supplies no http.Client of their own. Long-polling
// replication reads extend it by the requested wait.
const DefaultTimeout = 30 * time.Second

// DefaultRetries is how many times a read-only request is retried after
// a 5xx or a transport error before the error surfaces.
const DefaultRetries = 2

// DefaultRetryBackoff is the pause before each retry.
const DefaultRetryBackoff = 100 * time.Millisecond

// Client speaks the /v1 wire contract to one server.
type Client struct {
	base string
	hc   *http.Client

	// Retries is the extra attempts after a 5xx or transport error on
	// read-only (GET) requests; writes are never retried (an update is
	// not idempotent — a retry after an ambiguous failure could apply
	// twice). Set 0 to disable.
	Retries int
	// RetryBackoff is the pause before each retry.
	RetryBackoff time.Duration
}

// New returns a client of the server at baseURL (scheme://host[:port],
// no trailing slash needed). A nil hc gets a dedicated http.Client with
// DefaultTimeout; pass your own to share pools or customize transport.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{
		base:         strings.TrimRight(baseURL, "/"),
		hc:           hc,
		Retries:      DefaultRetries,
		RetryBackoff: DefaultRetryBackoff,
	}
}

// BaseURL returns the server base URL this client speaks to.
func (c *Client) BaseURL() string { return c.base }

// WithTrace returns ctx carrying a request trace ID: every request made
// with the returned context sends it in api.HeaderTrace, so one routed
// operation shares a single ID across proxy and backend log lines. The
// serving tiers set this automatically for requests they forward; call
// it directly to stamp your own operations.
func WithTrace(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, id)
}

// setTrace stamps the outgoing request with the context's trace ID, when
// one is present.
func setTrace(ctx context.Context, req *http.Request) {
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(api.HeaderTrace, id)
	}
}

// Query answers one ranked query. k <= 0 requests the server default
// (api.DefaultK).
func (c *Client) Query(ctx context.Context, class, query string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.postJSON(ctx, api.PathQuery, api.QueryRequest{Class: class, Query: query, K: max(k, 0)}, &out, true)
	return out, err
}

// QueryBatch answers up to api.MaxBatch queries in one request, fanned
// out over the server engine's worker pool.
func (c *Client) QueryBatch(ctx context.Context, class string, queries []string, k int) (api.QueryResponse, error) {
	var out api.QueryResponse
	if len(queries) == 0 {
		return out, fmt.Errorf("client: empty query batch")
	}
	if len(queries) > api.MaxBatch {
		return out, fmt.Errorf("client: batch of %d queries exceeds limit %d", len(queries), api.MaxBatch)
	}
	err := c.postJSON(ctx, api.PathQuery, api.QueryRequest{Class: class, Queries: queries, K: max(k, 0)}, &out, true)
	return out, err
}

// Proximity scores one node pair under a trained class.
func (c *Client) Proximity(ctx context.Context, class, x, y string) (api.ProximityResponse, error) {
	var out api.ProximityResponse
	err := c.postJSON(ctx, api.PathProximity, api.ProximityRequest{Class: class, X: x, Y: y}, &out, true)
	return out, err
}

// Update applies a batch of live node/edge additions. Never retried: an
// update is not idempotent, and a retry after an ambiguous failure (the
// server may have applied it) could apply it twice. Pre-checks the
// api.MaxUpdate limit to save the round trip.
func (c *Client) Update(ctx context.Context, req api.UpdateRequest) (api.UpdateResponse, error) {
	var out api.UpdateResponse
	if len(req.Nodes)+len(req.Edges) == 0 {
		return out, fmt.Errorf("client: empty update")
	}
	if total := len(req.Nodes) + len(req.Edges); total > api.MaxUpdate {
		return out, fmt.Errorf("client: update of %d additions exceeds limit %d", total, api.MaxUpdate)
	}
	err := c.postJSON(ctx, api.PathUpdate, req, &out, false)
	return out, err
}

// Stats reads the serving epoch, LSN, graph counts and class inventory.
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var out api.StatsResponse
	err := c.getJSON(ctx, api.PathStats, nil, &out, true)
	return out, err
}

// Health reads the liveness inventory.
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var out api.HealthResponse
	err := c.getJSON(ctx, api.PathHealthz, nil, &out, true)
	return out, err
}

// Classes lists the trained class names.
func (c *Client) Classes(ctx context.Context) ([]string, error) {
	var out api.ClassesResponse
	err := c.getJSON(ctx, api.PathClasses, nil, &out, true)
	return out.Classes, err
}

// Ready probes readiness. Unlike every other endpoint, /v1/readyz
// carries its body on both 200 (ready) and 503 (catching up / WAL
// failed), so a decodable 503 is NOT an error here: the response reports
// role, LSN and lag either way and resp.Ready() distinguishes the two.
// Errors mean the probe itself failed (unreachable, undecodable). Never
// retried — a probe's job is to observe the replica as it is right now.
func (c *Client) Ready(ctx context.Context) (api.ReadyResponse, error) {
	var out api.ReadyResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathReadyz, nil)
	if err != nil {
		return out, fmt.Errorf("client: %w", err)
	}
	setTrace(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, fmt.Errorf("client: readyz: %w", err)
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return out, decodeError(resp)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, api.MaxBodyBytes)).Decode(&out); err != nil {
		return out, fmt.Errorf("client: readyz: undecodable body: %w", err)
	}
	return out, nil
}

// ReplicateSince reads WAL records with LSN > after, up to max records,
// long-polling up to wait when none are available. afterTerm is the term
// of the record the caller holds at LSN after (0 to skip the check): a
// server whose record at that LSN carries a different term answers 409
// api.CodeTermMismatch — the histories diverged and the caller must
// re-bootstrap from a snapshot instead of streaming. A quiet long poll
// must not be mistaken for a timeout: when wait approaches the
// http.Client's own Timeout (which caps the whole request regardless of
// context), the request runs on a timeout-free clone bounded by a
// context deadline of wait plus the usual budget instead.
func (c *Client) ReplicateSince(ctx context.Context, after, afterTerm uint64, max int, wait time.Duration) (api.SinceResponse, error) {
	var out api.SinceResponse
	q := url.Values{}
	q.Set("lsn", fmt.Sprint(after))
	if afterTerm > 0 {
		q.Set("term", fmt.Sprint(afterTerm))
	}
	if max > 0 {
		q.Set("max", fmt.Sprint(max))
	}
	hc := c.hc
	if wait > 0 {
		q.Set("wait_ms", fmt.Sprint(wait.Milliseconds()))
		budget := hc.Timeout
		if budget <= 0 {
			budget = DefaultTimeout
		}
		if hc.Timeout > 0 && wait*2 >= hc.Timeout {
			clone := *hc
			clone.Timeout = 0
			hc = &clone
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wait+budget)
		defer cancel()
	}
	u := c.base + api.PathReplicateSince + "?" + q.Encode()
	err := c.doWith(ctx, hc, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		setTrace(ctx, req)
		return req, nil
	}, &out, false)
	return out, err
}

// ReplicateSnapshot streams an engine snapshot (the follower bootstrap /
// backup source). The caller owns the returned body and must Close it;
// decode it with semprox.LoadEngine.
func (c *Client) ReplicateSnapshot(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.PathReplicateSnapshot, nil)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	setTrace(ctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: snapshot: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		defer drain(resp.Body)
		return nil, decodeError(resp)
	}
	return resp.Body, nil
}

// getJSON issues one GET and decodes the 200 body into out.
func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out any, retry bool) error {
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		setTrace(ctx, req)
		return req, nil
	}, out, retry)
}

// postJSON issues one POST with a JSON body and decodes the 200 body
// into out.
func (c *Client) postJSON(ctx context.Context, path string, in, out any, retry bool) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		setTrace(ctx, req)
		return req, nil
	}, out, retry)
}

// do runs the request, decoding 2xx into out and everything else through
// the error envelope. With retry, a transport error or a 5xx is retried
// up to c.Retries times (4xx never retries — the request itself is
// wrong, and resending an identical one cannot help). mkReq builds a
// fresh request per attempt so bodies are re-readable.
func (c *Client) do(ctx context.Context, mkReq func() (*http.Request, error), out any, retry bool) error {
	return c.doWith(ctx, c.hc, mkReq, out, retry)
}

// doWith is do on an explicit http.Client (the long-poll path swaps in a
// timeout-free clone).
func (c *Client) doWith(ctx context.Context, hc *http.Client, mkReq func() (*http.Request, error), out any, retry bool) error {
	attempts := 1
	if retry && c.Retries > 0 {
		attempts += c.Retries
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return fmt.Errorf("client: %w (after %v)", ctx.Err(), lastErr)
			case <-time.After(c.RetryBackoff):
			}
		}
		req, err := mkReq()
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		resp, err := hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: %w", err)
			if ctx.Err() != nil {
				return lastErr
			}
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			err := decodeError(resp)
			drain(resp.Body)
			if resp.StatusCode >= 500 {
				lastErr = err
				continue
			}
			return err
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 256<<20)).Decode(out)
		drain(resp.Body)
		if err != nil {
			return fmt.Errorf("client: undecodable response: %w", err)
		}
		return nil
	}
	return lastErr
}

// decodeError turns a non-2xx response into *api.Error: the structured
// envelope when the server sent one, a synthesized CodeInternal error
// (carrying a body excerpt) when it did not — so callers always get the
// same error type with the HTTP status attached. When the response
// carries a trace ID (api.HeaderTrace — every instrumented tier stamps
// it, error envelopes included), the message carries it too, so a failed
// routed read is greppable across proxy and backend log lines. The
// suffix is added once: an error relayed through the edge proxy arrives
// already stamped with the same propagated ID.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e *api.Error
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		e = &env.Error
		e.Status = resp.StatusCode
	} else {
		e = api.Errorf(resp.StatusCode, api.CodeInternal,
			"server returned %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if trace := resp.Header.Get(api.HeaderTrace); trace != "" && !strings.Contains(e.Message, "[trace ") {
		e.Message += " [trace " + trace + "]"
	}
	return e
}

// Metrics fetches the server's Prometheus text exposition from /metrics,
// under the same retry/backoff discipline as the typed reads (transport
// errors and 5xx retry, 4xx does not).
func (c *Client) Metrics(ctx context.Context) (string, error) {
	attempts := 1 + max(c.Retries, 0)
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return "", fmt.Errorf("client: %w (after %v)", ctx.Err(), lastErr)
			case <-time.After(c.RetryBackoff):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
		if err != nil {
			return "", fmt.Errorf("client: %w", err)
		}
		setTrace(ctx, req)
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: metrics: %w", err)
			if ctx.Err() != nil {
				return "", lastErr
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			err := decodeError(resp)
			drain(resp.Body)
			if resp.StatusCode >= 500 {
				lastErr = err
				continue
			}
			return "", err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		drain(resp.Body)
		if err != nil {
			lastErr = fmt.Errorf("client: metrics: %w", err)
			continue
		}
		return string(body), nil
	}
	return "", lastErr
}

// drain consumes and closes a response body so the underlying connection
// is reusable.
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<20)) //nolint:errcheck // best-effort
	body.Close()
}
