package semprox

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/mining"
)

// toyEngine builds an engine over the paper's toy graph with mining
// parameters loose enough to find M1–M4-style patterns.
func toyEngine(t testing.TB) (*Engine, *Graph) {
	t.Helper()
	g := fixtures.Toy()
	opts := DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
	opts.Train.Restarts = 2
	opts.Train.MaxIters = 200
	eng, err := NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, g
}

func classmateExamples(g *Graph) []Example {
	return []Example{
		{Q: g.NodeByName("Kate"), X: g.NodeByName("Jay"), Y: g.NodeByName("Alice")},
		{Q: g.NodeByName("Bob"), X: g.NodeByName("Tom"), Y: g.NodeByName("Alice")},
	}
}

func TestNewEngineValidation(t *testing.T) {
	g := fixtures.Toy()
	if _, err := NewEngine(g, "nope", DefaultOptions()); err == nil {
		t.Fatal("unknown anchor type accepted")
	}
	bad := DefaultOptions()
	bad.Engine = "nope"
	if _, err := NewEngine(g, "user", bad); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestEngineMinesMetagraphs(t *testing.T) {
	eng, _ := toyEngine(t)
	if eng.NumMetagraphs() == 0 {
		t.Fatal("no metagraphs")
	}
	if len(eng.Metagraphs()) != eng.NumMetagraphs() {
		t.Fatal("Metagraphs length mismatch")
	}
	if eng.MatchedCount() != 0 {
		t.Fatal("engine matched eagerly")
	}
}

func TestEngineTrainAndQuery(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	if eng.MatchedCount() != eng.NumMetagraphs() {
		t.Fatal("full training should match everything")
	}
	if got := eng.Classes(); len(got) != 1 || got[0] != "classmate" {
		t.Fatalf("Classes = %v", got)
	}
	res, err := eng.Query("classmate", g.NodeByName("Kate"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].Node != g.NodeByName("Jay") {
		t.Fatalf("Query(Kate) = %v, want Jay first", res)
	}
	p, err := eng.Proximity("classmate", g.NodeByName("Kate"), g.NodeByName("Jay"))
	if err != nil || p <= 0 || p > 1 {
		t.Fatalf("Proximity = %f, %v", p, err)
	}
	w := eng.Weights("classmate")
	if len(w) != eng.NumMetagraphs() {
		t.Fatalf("Weights length %d", len(w))
	}
}

func TestEngineUntrainedClassErrors(t *testing.T) {
	eng, g := toyEngine(t)
	if _, err := eng.Query("nope", g.NodeByName("Kate"), 5); err == nil {
		t.Fatal("query on untrained class succeeded")
	}
	if _, err := eng.Proximity("nope", 0, 1); err == nil {
		t.Fatal("proximity on untrained class succeeded")
	}
	if eng.Weights("nope") != nil {
		t.Fatal("weights for untrained class")
	}
}

func TestEngineDualStageMatchesLazily(t *testing.T) {
	eng, g := toyEngine(t)
	eng.TrainDualStage("classmate", classmateExamples(g), 2)
	matched := eng.MatchedCount()
	if matched == 0 {
		t.Fatal("dual stage matched nothing")
	}
	if matched >= eng.NumMetagraphs() {
		t.Fatalf("dual stage matched all %d metagraphs; expected a strict subset", matched)
	}
	res, err := eng.Query("classmate", g.NodeByName("Kate"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("empty dual-stage ranking")
	}
}

// TestEngineParallelTrainDeterministic asserts that Options.Workers only
// changes wall-clock, never results: training is seeded and the parallel
// matching merge is ordered by metagraph offset, so learned weights and
// rankings must match the serial build exactly.
func TestEngineParallelTrainDeterministic(t *testing.T) {
	weightsFor := func(workers int) ([]float64, []Ranked) {
		g := fixtures.Toy()
		opts := DefaultOptions()
		opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
		opts.Train.Restarts = 2
		opts.Train.MaxIters = 200
		opts.Workers = workers
		eng, err := NewEngine(g, "user", opts)
		if err != nil {
			t.Fatal(err)
		}
		eng.Train("classmate", classmateExamples(g))
		res, err := eng.Query("classmate", g.NodeByName("Kate"), 10)
		if err != nil {
			t.Fatal(err)
		}
		return eng.Weights("classmate"), res
	}
	wantW, wantR := weightsFor(1)
	for _, workers := range []int{2, 8} {
		gotW, gotR := weightsFor(workers)
		if len(gotW) != len(wantW) {
			t.Fatalf("workers=%d: %d weights, want %d", workers, len(gotW), len(wantW))
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("workers=%d: weight[%d] = %v, want %v", workers, i, gotW[i], wantW[i])
			}
		}
		if len(gotR) != len(wantR) {
			t.Fatalf("workers=%d: ranking length %d, want %d", workers, len(gotR), len(wantR))
		}
		for i := range wantR {
			if gotR[i] != wantR[i] {
				t.Fatalf("workers=%d: ranking[%d] = %v, want %v", workers, i, gotR[i], wantR[i])
			}
		}
	}
}

// TestEngineDualStageParallelDeterministic does the same for the lazy
// dual-stage path, which matches two different subsets through the
// concurrent per-slot cache.
func TestEngineDualStageParallelDeterministic(t *testing.T) {
	run := func(workers int) ([]float64, int) {
		g := fixtures.Toy()
		opts := DefaultOptions()
		opts.Mining = mining.Options{MaxNodes: 4, MinSupport: 1}
		opts.Train.Restarts = 2
		opts.Train.MaxIters = 200
		opts.Workers = workers
		eng, err := NewEngine(g, "user", opts)
		if err != nil {
			t.Fatal(err)
		}
		eng.TrainDualStage("classmate", classmateExamples(g), 2)
		return eng.Weights("classmate"), eng.MatchedCount()
	}
	wantW, wantMatched := run(1)
	for _, workers := range []int{4} {
		gotW, gotMatched := run(workers)
		if gotMatched != wantMatched {
			t.Fatalf("workers=%d matched %d metagraphs, serial matched %d", workers, gotMatched, wantMatched)
		}
		for i := range wantW {
			if gotW[i] != wantW[i] {
				t.Fatalf("workers=%d: weight[%d] = %v, want %v", workers, i, gotW[i], wantW[i])
			}
		}
	}
}

// TestEngineConcurrentOnline hammers Query and Proximity from many
// goroutines after training; run under -race this pins the documented
// thread-safety guarantee of the online phase.
func TestEngineConcurrentOnline(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	users := []NodeID{
		g.NodeByName("Alice"), g.NodeByName("Bob"), g.NodeByName("Kate"),
		g.NodeByName("Jay"), g.NodeByName("Tom"),
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := users[(w+i)%len(users)]
				if _, err := eng.Query("classmate", q, 10); err != nil {
					t.Error(err)
					return
				}
				x, y := users[i%len(users)], users[(i+1)%len(users)]
				if p, err := eng.Proximity("classmate", x, y); err != nil || p < 0 || p > 1 {
					t.Errorf("Proximity(%d, %d) = %f, %v", x, y, p, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEngineQueryDuringTrain pins the documented guarantee that queries on
// an already-trained class are safe while a different class trains.
func TestEngineQueryDuringTrain(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	done := make(chan struct{})
	go func() {
		defer close(done)
		eng.Train("family", []Example{
			{Q: g.NodeByName("Alice"), X: g.NodeByName("Bob"), Y: g.NodeByName("Tom")},
		})
	}()
	for i := 0; i < 100; i++ {
		if _, err := eng.Query("classmate", g.NodeByName("Kate"), 5); err != nil {
			t.Fatal(err)
		}
		eng.Classes()
	}
	<-done
	if got := eng.Classes(); len(got) != 2 {
		t.Fatalf("Classes = %v", got)
	}
}

func TestEngineLogTransform(t *testing.T) {
	g := fixtures.Toy()
	opts := DefaultOptions()
	opts.Mining = mining.Options{MaxNodes: 3, MinSupport: 1}
	opts.LogTransform = true
	opts.Train.Restarts = 1
	opts.Train.MaxIters = 50
	eng, err := NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("any", classmateExamples(g))
	if _, err := eng.Query("any", g.NodeByName("Kate"), 5); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRoundTripViaFacade(t *testing.T) {
	g := fixtures.Toy()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("round trip lost nodes")
	}
}

func TestMakeExamplesFacade(t *testing.T) {
	g := fixtures.Toy()
	labels := Labels{}
	labels.Add(g.NodeByName("Kate"), g.NodeByName("Jay"))
	users := g.NodesOfType(g.Types().ID("user"))
	ex := MakeExamples(labels, []NodeID{g.NodeByName("Kate")}, users, 5, 1)
	if len(ex) == 0 {
		t.Fatal("no examples")
	}
}
