package semprox

import "math"

// log1p is the count transform used when Options.LogTransform is set.
func log1p(c float64) float64 { return math.Log1p(c) }
