package semprox

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/match"
)

// Live graph mutations. ApplyUpdate threads a batch of node/edge additions
// through every layer without repeating the offline pipeline: the graph
// grows copy-on-write (graph.Apply), each already-matched metagraph is
// re-matched ONLY on the neighborhood the delta touched
// (index.RematchDelta), the recomputed rows overlay the flat CSR indices
// (index.WithPatch), and the trained weight vectors are kept verbatim —
// the paper's w* weighs metagraph features, not nodes, so a graph delta
// changes the features, never the learned weights. The result is swapped
// in as the next epoch through the engine's atomic pointer: queries in
// flight finish on the old epoch, new queries see the new one, and no
// query ever observes a mix.

// Delta is a batch of node and edge additions (see graph.Delta): new nodes
// carry an already-registered type name and a value, and edges may
// reference both existing node ids and the ids of nodes added by the same
// delta.
type Delta = graph.Delta

// DeltaNode declares one node addition of a Delta.
type DeltaNode = graph.DeltaNode

// Edge is an undirected edge between two node ids.
type Edge = graph.Edge

// UpdateStats describes what one ApplyUpdate did.
type UpdateStats struct {
	// Epoch is the serving epoch after the swap.
	Epoch uint64
	// LSN is the log sequence number the update was applied at (see
	// ApplyUpdateAt); without a WAL it advances by one per update.
	LSN uint64
	// NodesAdded and EdgesAdded count the delta's genuinely new nodes and
	// edges (self loops, duplicates and already-present edges excluded).
	NodesAdded, EdgesAdded int
	// Touched counts the pre-existing nodes whose adjacency changed.
	Touched int
	// Rematched counts the matched metagraphs whose part indices were
	// incrementally re-matched and patched.
	Rematched int
	// Pending counts the structures awaiting background compaction after
	// the swap (see Engine.Compact).
	Pending int
}

// ApplyUpdate grows the graph by d and atomically swaps in the next
// serving epoch. Matched metagraphs are re-matched only inside the
// neighborhood the delta touched, trained classes keep their weights and
// have their merged indices patched row-for-row, and queries are answered
// without interruption throughout (readers never block on the writer
// lock). The updated engine answers every query exactly as an engine
// whose index was rebuilt from scratch on the post-delta graph would.
//
// The metagraph set itself is NOT re-mined: the paper's framework
// (Fig. 3) refreshes mining offline, and a delta cannot introduce new
// node types, so the mined patterns remain well-formed. On error (unknown
// type, out-of-range endpoint) the engine is unchanged.
//
// ApplyUpdate leaves the new epoch's overlays uncompacted; call Compact
// (typically from a background goroutine, as cmd/semproxd does) to fold
// them into flat storage.
func (e *Engine) ApplyUpdate(d Delta) (UpdateStats, error) {
	return e.applyUpdate(d, 0, 1)
}

// ApplyUpdateAt is ApplyUpdate with an explicit log sequence number: the
// next epoch records lsn as its durable position. This is how the WAL
// threads through the engine — a primary appends the delta to its log
// first and applies it at the LSN the log assigned; recovery and follower
// replicas re-apply logged records at their original LSNs, so the
// recovered (or replicated) engine ends at exactly the primary's
// position. lsn must exceed the engine's current LSN (records at or
// below it are already part of this engine's state; callers skip them).
func (e *Engine) ApplyUpdateAt(d Delta, lsn uint64) (UpdateStats, error) {
	if lsn == 0 {
		return UpdateStats{}, fmt.Errorf("semprox: ApplyUpdateAt: LSN must be positive")
	}
	return e.applyUpdate(d, lsn, 1)
}

// ApplyUpdateBatchAt applies d as the coalescing of `records` contiguous
// log records ending at lsn (i.e. records lsn-records+1 .. lsn), in one
// epoch swap. Because deltas are additive and new-node ids are assigned
// deterministically (n, n+1, ... off the graph the delta lands on),
// contiguous logged deltas coalesce by plain concatenation: the merged
// delta assigns every node the same id and adds the same edge set as
// applying the records one at a time would. The epoch counter advances
// by `records` — one per coalesced record — so the resulting engine is
// byte-identical (graph, indices, classes, epoch, LSN, snapshot bytes)
// to the one-at-a-time engine after compaction; this is what lets a
// catching-up follower drain a replication batch through a single apply
// without its serving state diverging from the primary's
// (property-tested by TestApplyUpdateBatchMatchesOneAtATime).
//
// The whole range must lie beyond the engine's current LSN; on error the
// engine is unchanged.
func (e *Engine) ApplyUpdateBatchAt(d Delta, lsn uint64, records int) (UpdateStats, error) {
	if records < 1 {
		return UpdateStats{}, fmt.Errorf("semprox: ApplyUpdateBatchAt: records must be >= 1, got %d", records)
	}
	if lsn < uint64(records) {
		return UpdateStats{}, fmt.Errorf("semprox: ApplyUpdateBatchAt: %d records cannot end at LSN %d", records, lsn)
	}
	return e.applyUpdate(d, lsn, records)
}

// AdvanceLSN records that the durable log positions through lsn are
// accounted for without changing any serving state. It exists for one
// case: a logged record the engine rejected AFTER it became durable
// (wal.Append succeeded, ApplyUpdateAt failed). ApplyUpdateAt is
// deterministic, so crash replay and followers reject that record
// identically; advancing the LSN past it keeps the engine, its log, and
// its replicas aligned on the same skipped position — the primary's
// next snapshot covers the dead record, ReplayWAL does not wedge on it,
// and a re-bootstrapping follower lands beyond it. No-op when lsn is at
// or below the engine's current LSN. Safe for concurrent use.
func (e *Engine) AdvanceLSN(lsn uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.cur.Load()
	if lsn <= ep.lsn {
		return
	}
	e.publish(&epoch{g: ep.g, metaIx: ep.metaIx, classes: ep.classes, version: ep.version, lsn: lsn})
}

// applyUpdate builds and publishes the next epoch covering `records`
// coalesced log records (1 for a plain update); lsn == 0 means "no
// WAL": advance the epoch's LSN by one so the counter still tracks update
// count.
func (e *Engine) applyUpdate(d Delta, lsn uint64, records int) (UpdateStats, error) {
	start := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.cur.Load()
	if lsn == 0 {
		lsn = ep.lsn + 1
	} else if lsn-uint64(records)+1 <= ep.lsn {
		return UpdateStats{}, fmt.Errorf("semprox: records %d..%d not beyond engine LSN %d",
			lsn-uint64(records)+1, lsn, ep.lsn)
	}
	ng, touched, err := ep.g.Apply(d)
	if err != nil {
		return UpdateStats{}, err
	}
	if records > 1 {
		// One Apply bumped the graph version once; a coalesced batch must
		// advance it once per record it covers, so the epoch counter stays
		// in lockstep with a replica that applied them one at a time.
		ng = ng.WithVersion(ep.g.Version() + uint64(records))
	}
	st := UpdateStats{
		Epoch:      ng.Version(),
		LSN:        lsn,
		NodesAdded: len(d.Nodes),
		EdgesAdded: ng.NumEdges() - ep.g.NumEdges(),
		Touched:    len(touched),
	}

	// New nodes with edges are just as "touched" as existing endpoints:
	// their adjacency is new, so they seed the re-match neighborhood too.
	seeds := touched
	for i := 0; i < len(d.Nodes); i++ {
		v := graph.NodeID(ep.g.NumNodes() + i)
		if ng.Degree(v) > 0 {
			seeds = append(seeds, v)
		}
	}

	metaIx := ep.metaIx
	patches := make(map[int]*index.Patch)
	if len(seeds) > 0 {
		cloned := false
		for i, part := range ep.metaIx {
			if part == nil {
				continue
			}
			p := index.RematchDelta(ng, e.ms[i], func(sub *graph.Graph) match.Matcher {
				return newMatcher(e.opts.Engine, sub)
			}, seeds)
			if e.opts.LogTransform {
				p = p.Transform(log1p)
			}
			if !cloned {
				metaIx = append([]*index.Index(nil), ep.metaIx...)
				cloned = true
			}
			metaIx[i] = part.WithPatch(p)
			patches[i] = p
			st.Rematched++
		}
	}

	classes := make(map[string]*classModel, len(ep.classes))
	for name, cm := range ep.classes {
		classes[name] = patchClass(cm, metaIx, patches)
	}

	nep := &epoch{g: ng, metaIx: metaIx, classes: classes, version: ng.Version(), lsn: lsn}
	e.publish(nep)
	st.Pending = nep.pending
	engApply.Since(start)
	engRematched.Observe(int64(st.Rematched))
	return st, nil
}

// patchClass rebuilds one trained class for the next epoch: the weight
// vector and kept set carry over unchanged, and the merged class index is
// patched with the re-merged rows of every key some kept part re-matched.
// Row k of the merge is part kept[k] (each part spans one metagraph), so
// a merged replacement row is the concatenation of the patched parts'
// rows in kept order — exactly what a full index.Merge of the patched
// parts would produce for that key, at the cost of the touched rows only.
func patchClass(cm *classModel, metaIx []*index.Index, patches map[int]*index.Patch) *classModel {
	nodeKeys := make(map[graph.NodeID]bool)
	pairKeys := make(map[index.PairKey]bool)
	for _, mi := range cm.kept {
		p := patches[mi]
		if p == nil {
			continue
		}
		for _, k := range p.NodeKeys() {
			nodeKeys[k] = true
		}
		for _, k := range p.PairKeys() {
			pairKeys[k] = true
		}
	}
	if len(nodeKeys) == 0 && len(pairKeys) == 0 {
		return cm
	}
	mx := make(map[graph.NodeID][]index.Entry, len(nodeKeys))
	for x := range nodeKeys {
		var row []index.Entry
		for k, mi := range cm.kept {
			for _, en := range metaIx[mi].NodeVec(x) {
				row = append(row, index.Entry{Meta: int32(k), Count: en.Count})
			}
		}
		mx[x] = row
	}
	mxy := make(map[index.PairKey][]index.Entry, len(pairKeys))
	for pk := range pairKeys {
		x, y := pk.Nodes()
		var row []index.Entry
		for k, mi := range cm.kept {
			for _, en := range metaIx[mi].PairVec(x, y) {
				row = append(row, index.Entry{Meta: int32(k), Count: en.Count})
			}
		}
		mxy[pk] = row
	}
	patch := index.NewPatch(len(cm.kept), mx, mxy)
	return &classModel{kept: cm.kept, ix: cm.ix.WithPatch(patch), model: cm.model}
}

// Compact folds every copy-on-write overlay of the current epoch — the
// graph's touched rows and the patched indices — into fresh flat CSR
// storage and swaps the compacted epoch in. It is a no-op when nothing is
// pending. Queries keep serving throughout (results are identical before
// and after; compaction only restores the flat-storage read path), so it
// is safe — and intended — to run from a background goroutine after
// ApplyUpdate.
func (e *Engine) Compact() {
	e.mu.Lock()
	defer e.mu.Unlock()
	ep := e.cur.Load()
	if ep.pending == 0 {
		return
	}
	engCompactions.Inc()
	metaIx := make([]*index.Index, len(ep.metaIx))
	for i, ix := range ep.metaIx {
		if ix != nil {
			metaIx[i] = ix.Compact()
		}
	}
	classes := make(map[string]*classModel, len(ep.classes))
	for name, cm := range ep.classes {
		classes[name] = &classModel{kept: cm.kept, ix: cm.ix.Compact(), model: cm.model}
	}
	e.publish(&epoch{g: ep.g.Compact(), metaIx: metaIx, classes: classes, version: ep.version, lsn: ep.lsn})
}

// Stats is a consistent point-in-time snapshot of the serving state.
type Stats struct {
	// Epoch is the serving epoch counter (one per applied update).
	Epoch uint64
	// LSN is the durable log position of the serving epoch (see
	// Engine.LSN).
	LSN uint64
	// Nodes, Edges and Types describe the serving graph.
	Nodes, Edges, Types int
	// Metagraphs is |M|; Matched counts the metagraphs matched so far.
	Metagraphs, Matched int
	// PendingCompaction counts the structures (graph + indices) still
	// carrying update overlays that Compact would fold away.
	PendingCompaction int
	// Classes lists the trained class names, sorted.
	Classes []string
}

// Stats reports the current epoch's serving state. Safe for concurrent
// use; all fields describe ONE epoch.
func (e *Engine) Stats() Stats {
	ep := e.cur.Load()
	matched := 0
	for _, ix := range ep.metaIx {
		if ix != nil {
			matched++
		}
	}
	classes := make([]string, 0, len(ep.classes))
	for c := range ep.classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	return Stats{
		Epoch:             ep.version,
		LSN:               ep.lsn,
		Nodes:             ep.g.NumNodes(),
		Edges:             ep.g.NumEdges(),
		Types:             ep.g.NumTypes(),
		Metagraphs:        len(e.ms),
		Matched:           matched,
		PendingCompaction: ep.pending,
		Classes:           classes,
	}
}
