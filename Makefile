# Tier-1 verification plus the invariants this repo adds on top:
#   make ci  — lint (gofmt + vet), build, race-enabled tests, the
#              per-package coverage floor (now covering the public api +
#              client packages too), a bench smoke run that cross-checks
#              parallel vs serial results on the offline index build and
#              the online sharded top-k scan, runs a live ApplyUpdate
#              cycle cross-checked against a from-scratch rebuild, a WAL
#              append/replay cycle, and an in-process routed-serving
#              cycle (1 primary + 2 followers, routed == direct), a
#              two-process replication smoke (primary + follower on
#              loopback), a routing smoke (routed client failover
#              across a primary kill), and a failover smoke (kill -9 the
#              primary under a live write stream: promotion, no lost
#              acked writes, zombie fencing).
GO ?= go
COVER_FLOOR ?= 80

.PHONY: ci lint vet build test cover bench-smoke bench replication-smoke routing-smoke failover-smoke

ci: lint build test cover bench-smoke replication-smoke routing-smoke failover-smoke

# gofmt must be a no-op and vet must be clean; staticcheck runs too when
# the host has it installed (the CI image and the dev container may not).
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipped"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Per-package statement-coverage floor on the learning core, the serving
# layer, and the public wire contract + typed client. Fails when any
# package drops below $(COVER_FLOOR)%.
cover:
	@for pkg in internal/core internal/server api client; do \
		out=$$(mktemp); \
		$(GO) test -coverprofile=$$out ./$$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f $$out; \
		echo "$$pkg coverage: $$pct% (floor $(COVER_FLOOR)%)"; \
		awk -v p=$$pct -v f=$(COVER_FLOOR) 'BEGIN { exit (p + 0 < f + 0) }' \
			|| { echo "FAIL: $$pkg statement coverage $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; }; \
	done

# Quick end-to-end bench: verifies identical parallel/serial results for
# the offline build AND the online sharded scan, runs one live
# ApplyUpdate cycle whose patched index must match a from-scratch rebuild
# byte-for-byte, runs a WAL append/replay/reopen cycle that must lose no
# record, and stands up the routed-serving stack (primary + 2 followers
# in-process) whose routed answers must be element-identical to direct
# primary answers — all without touching the committed BENCH_*.json
# files. Exits non-zero on any drift.
bench-smoke:
	$(GO) run ./cmd/bench -reps 1 -workers 1,4 -out - -online-out - -update-out - -wal-out - -routing-out - -failover-out -

# Two-process replication smoke: durable primary + follower on loopback,
# live updates pushed through the typed client (semproxctl), follower
# must reach lag 0 and serve byte-identical query output, legacy aliases
# must match /v1 (see scripts/replication_smoke.sh).
replication-smoke:
	bash scripts/replication_smoke.sh

# Routed-serving smoke: primary + follower + the replica-aware routed
# client on loopback; routed reads must stay byte-identical across
# replicas and keep serving with zero failures after the primary is
# killed (see scripts/routing_smoke.sh).
routing-smoke:
	bash scripts/routing_smoke.sh

# Failover smoke: kill -9 a synchronous primary under a live routed
# write stream; a follower must win the promotion election and resume
# acking the same writer, every acked write must be on the promoted
# primary, and the revived zombie must be fenced — its stream refused,
# its synchronous acks never released (see scripts/failover_smoke.sh).
failover-smoke:
	bash scripts/failover_smoke.sh

# Full benchmark; rewrites BENCH_offline.json, BENCH_online.json,
# BENCH_update.json, BENCH_wal.json, BENCH_routing.json and
# BENCH_failover.json (commit them to extend the perf trajectory).
bench:
	$(GO) run ./cmd/bench
