# Tier-1 verification plus the invariants this repo adds on top:
#   make ci  — vet, build, race-enabled tests, and an offline-bench smoke
#              run that cross-checks parallel vs serial index builds.
GO ?= go

.PHONY: ci vet build test bench-smoke bench

ci: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Quick end-to-end offline build: verifies byte-identical indices across
# worker counts and prints timings without touching BENCH_offline.json.
bench-smoke:
	$(GO) run ./cmd/bench -reps 1 -workers 1,4 -out -

# Full offline benchmark; rewrites BENCH_offline.json (commit it to extend
# the perf trajectory).
bench:
	$(GO) run ./cmd/bench
