# Tier-1 verification plus the invariants this repo adds on top:
#   make ci  — lint (gofmt + vet + the semproxlint analyzer suite),
#              build, race-enabled tests, the
#              per-package coverage floors (learning core, serving layer,
#              public api + client, WAL, replica, load statistics), a
#              bench smoke run that cross-checks parallel vs serial
#              results on the offline index build and the online sharded
#              top-k scan, runs a live ApplyUpdate cycle cross-checked
#              against a from-scratch rebuild, a WAL append/replay cycle,
#              and an in-process routed-serving cycle (1 primary + 2
#              followers, routed == direct), a two-process replication
#              smoke (primary + follower on loopback), a routing smoke
#              (routed client failover across a primary kill), a
#              failover smoke (kill -9 the primary under a live write
#              stream: promotion, no lost acked writes, zombie fencing),
#              an open-loop load smoke (Poisson arrivals against the
#              self-hosted serving stack, error-free with consistent
#              percentiles), the load gate (fresh p99 at each scenario's
#              gate rate vs the committed BENCH_load.json), and the edge
#              proxy smoke (semproxy over real semproxd processes:
#              epoch-keyed cache flush + zero failed reads across a
#              primary kill), and the observability smoke (/metrics on
#              real daemons with moving counters, one trace ID across
#              the proxy and backend request logs, pprof answering).
GO ?= go
COVER_FLOOR ?= 80

.PHONY: ci lint vet build test cover fuzz-smoke bench-smoke bench replication-smoke routing-smoke failover-smoke proxy-smoke obs-smoke load-smoke load-smoke-e2e load-gate load-bench proxy-bench

ci: lint build test cover fuzz-smoke bench-smoke replication-smoke routing-smoke failover-smoke proxy-smoke obs-smoke load-smoke load-gate

# gofmt must be a no-op, vet must be clean, and the repo's own analyzer
# suite (cmd/semproxlint: rawpath, atomicwrite, metricname, envelope,
# ctxfirst, sleepwait — the invariants DESIGN.md used to state as prose)
# must report nothing. semproxlint builds from this repo, so unlike the
# external tools it can never be "not installed" — it always runs, even
# for contributors with nothing but the Go toolchain. staticcheck and
# govulncheck run when the host has them (the dev container may not);
# CI installs pinned versions and sets REQUIRE_STATICCHECK=1 /
# REQUIRE_GOVULNCHECK=1, turning each "not installed; skipped" branch
# into a hard failure — the lint job can never silently thin itself.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/semproxlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		elif [ -n "$${REQUIRE_STATICCHECK:-}" ]; then \
		echo "FAIL: REQUIRE_STATICCHECK set but staticcheck is not installed"; exit 1; \
		else echo "staticcheck not installed; skipped"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
		elif [ -n "$${REQUIRE_GOVULNCHECK:-}" ]; then \
		echo "FAIL: REQUIRE_GOVULNCHECK set but govulncheck is not installed"; exit 1; \
		else echo "govulncheck not installed; skipped"; fi

vet:
	$(GO) vet ./...

# Bounded per-commit fuzzing: every Fuzz* target runs its engine for a
# short budget (FUZZ_TIME, default 5s each) so corpora actually execute
# on every commit instead of only replaying as seed cases (see
# scripts/fuzz_smoke.sh; fails loudly if no targets are found).
fuzz-smoke:
	bash scripts/fuzz_smoke.sh

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Per-package statement-coverage floors. Entries are pkg:floor pairs; a
# bare pkg uses $(COVER_FLOOR). Floors are set to what each package
# honestly sustains today (wal's fault-injection error paths and
# replica's network-failure arms keep those two below the default), so
# any drop is a regression, not noise.
COVER_PKGS ?= internal/core internal/server api client \
	internal/wal:80 internal/replica:75 internal/loadstats:90 internal/report:85 \
	internal/proxy:85 internal/obs:85 internal/lint:90
cover:
	@for entry in $(COVER_PKGS); do \
		pkg=$${entry%%:*}; floor=$${entry#*:}; \
		[ "$$floor" = "$$entry" ] && floor=$(COVER_FLOOR); \
		out=$$(mktemp); \
		$(GO) test -coverprofile=$$out ./$$pkg || exit 1; \
		pct=$$($(GO) tool cover -func=$$out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f $$out; \
		echo "$$pkg coverage: $$pct% (floor $$floor%)"; \
		awk -v p=$$pct -v f=$$floor 'BEGIN { exit (p + 0 < f + 0) }' \
			|| { echo "FAIL: $$pkg statement coverage $$pct% is below the $$floor% floor"; exit 1; }; \
	done

# Quick end-to-end bench: verifies identical parallel/serial results for
# the offline build AND the online sharded scan, runs one live
# ApplyUpdate cycle whose patched index must match a from-scratch rebuild
# byte-for-byte, runs a WAL append/replay/reopen cycle that must lose no
# record, and stands up the routed-serving stack (primary + 2 followers
# in-process) whose routed answers must be element-identical to direct
# primary answers — all without touching the committed BENCH_*.json
# files. Exits non-zero on any drift.
bench-smoke:
	$(GO) run ./cmd/bench -reps 1 -workers 1,4 -out - -online-out - -update-out - -wal-out - -routing-out - -failover-out -

# Two-process replication smoke: durable primary + follower on loopback,
# live updates pushed through the typed client (semproxctl), follower
# must reach lag 0 and serve byte-identical query output, legacy aliases
# must match /v1 (see scripts/replication_smoke.sh).
replication-smoke:
	bash scripts/replication_smoke.sh

# Routed-serving smoke: primary + follower + the replica-aware routed
# client on loopback; routed reads must stay byte-identical across
# replicas and keep serving with zero failures after the primary is
# killed (see scripts/routing_smoke.sh).
routing-smoke:
	bash scripts/routing_smoke.sh

# Failover smoke: kill -9 a synchronous primary under a live routed
# write stream; a follower must win the promotion election and resume
# acking the same writer, every acked write must be on the promoted
# primary, and the revived zombie must be fenced — its stream refused,
# its synchronous acks never released (see scripts/failover_smoke.sh).
failover-smoke:
	bash scripts/failover_smoke.sh

# Edge proxy smoke: a real semproxy over real semproxd processes
# (primary + 2 followers on loopback). Repeat reads must go miss -> hit
# byte-identically, an update through the proxy must flush the cache
# under a bumped epoch, and a kill -9 of the primary under a live reader
# must lose zero reads (see scripts/proxy_smoke.sh).
proxy-smoke:
	bash scripts/proxy_smoke.sh

# Observability smoke: real semproxd + semproxy daemons on loopback;
# /metrics must expose the WAL fsync latency, replication lag,
# per-endpoint latency, and hedge/cache families with counters that MOVE
# under traffic, one caller-supplied trace ID must appear in both the
# proxy's and a backend's request logs, the -debug-addr pprof listener
# must answer, and semproxctl -metrics must fetch a prefix-filtered
# exposition (see scripts/obs_smoke.sh).
obs-smoke:
	bash scripts/obs_smoke.sh

# Open-loop load smoke: stand up the real serving stack (durable primary
# + 2 followers behind the routed client, in-process), fire every
# scenario's Poisson stream at its gate rate for a short deterministic
# window, and fail on any request error or inconsistent percentile
# slate. Touches no committed files.
load-smoke:
	$(GO) run ./cmd/loadgen -mode smoke -out -

# The same open-loop smoke fired at real semproxd processes (primary +
# 2 followers on loopback) through loadgen's external mode — the
# cross-check that the harness and the daemon wiring agree (see
# scripts/load_smoke.sh).
load-smoke-e2e:
	bash scripts/load_smoke.sh

# Load regression gate: a fresh short run at each scenario's gate rate,
# compared against the committed BENCH_load.json. Fails when a fresh p99
# exceeds baseline_p99 * 3 + 25ms (explicit tolerances — see cmd/loadgen)
# or when any request errors.
load-gate:
	$(GO) run ./cmd/loadgen -mode gate -out -

# Full benchmark; rewrites BENCH_offline.json, BENCH_online.json,
# BENCH_update.json, BENCH_wal.json, BENCH_routing.json and
# BENCH_failover.json (commit them to extend the perf trajectory).
bench:
	$(GO) run ./cmd/bench

# Full open-loop load sweep; rewrites BENCH_load.json with per-rate
# latency percentiles and each scenario's max sustainable QPS under its
# p99 SLO (commit it to extend the load trajectory).
load-bench:
	$(GO) run ./cmd/loadgen

# Edge-tier A/B; rewrites BENCH_proxy.json: hedged vs unhedged p99 with
# an injected straggler follower, and cache-on vs cache-off max
# sustainable QPS under the Zipf-hot scenario (commit it to extend the
# perf trajectory).
proxy-bench:
	$(GO) run ./cmd/loadgen -mode proxy
