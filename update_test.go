package semprox

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/index"
)

// rebuildFromScratch builds a reference engine on the final graph: same
// metagraph set, same trained weights (the paper's w* weighs metagraph
// features, so a graph delta does not retrain), but every matched part
// re-matched from scratch on the compacted final graph and every class
// index re-merged in full. ApplyUpdate must be indistinguishable from it.
func rebuildFromScratch(t testing.TB, e *Engine) *Engine {
	t.Helper()
	ep := e.cur.Load()
	e2 := &Engine{anchor: e.anchor, opts: e.opts, ms: e.ms}
	nep := &epoch{
		g:       ep.g.Compact(),
		metaIx:  make([]*index.Index, len(e.ms)),
		classes: make(map[string]*classModel, len(ep.classes)),
		version: ep.version,
	}
	e2.cur.Store(nep)
	matched := make([]int, 0, len(e.ms))
	for i, ix := range ep.metaIx {
		if ix != nil {
			matched = append(matched, i)
		}
	}
	nep.metaIx = e2.matchMissing(nep, nep.metaIx, matched)
	for name, cm := range ep.classes {
		nep.classes[name] = &classModel{kept: cm.kept, ix: mergeFor(nep.metaIx, cm.kept), model: cm.model}
	}
	return e2
}

// randomToyDelta grows the toy graph with users, attributes and edges.
func randomToyDelta(rng *rand.Rand, numNodes int, tag string) Delta {
	var d Delta
	types := []string{"user", "school", "hobby", "employer"}
	for i := rng.Intn(3); i > 0; i-- {
		d.Nodes = append(d.Nodes, DeltaNode{
			Type:  types[rng.Intn(len(types))],
			Value: fmt.Sprintf("%s-%d", tag, i),
		})
	}
	total := numNodes + len(d.Nodes)
	for i := 1 + rng.Intn(6); i > 0; i-- {
		d.Edges = append(d.Edges, Edge{U: NodeID(rng.Intn(total)), V: NodeID(rng.Intn(total))})
	}
	return d
}

// assertEngineEquivalent checks that two engines answer every query,
// proximity and weight read byte-identically, across worker counts.
func assertEngineEquivalent(t *testing.T, got, want *Engine, tag string) {
	t.Helper()
	g := want.Graph()
	if gotG := got.Graph(); gotG.NumNodes() != g.NumNodes() || gotG.NumEdges() != g.NumEdges() {
		t.Fatalf("%s: graph %v vs %v", tag, gotG, g)
	}
	classes := want.Classes()
	if !reflect.DeepEqual(got.Classes(), classes) {
		t.Fatalf("%s: classes %v vs %v", tag, got.Classes(), classes)
	}
	users := g.NodesOfType(g.Types().ID("user"))
	for _, class := range classes {
		if !reflect.DeepEqual(got.Weights(class), want.Weights(class)) {
			t.Fatalf("%s: weights of %q differ", tag, class)
		}
		for _, workers := range []int{1, 3, 8} {
			got.SetWorkers(workers)
			want.SetWorkers(workers)
			for _, q := range users {
				for _, k := range []int{0, 3} {
					a, errA := got.Query(class, q, k)
					b, errB := want.Query(class, q, k)
					if (errA != nil) != (errB != nil) {
						t.Fatalf("%s: query error mismatch: %v vs %v", tag, errA, errB)
					}
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("%s: class %q workers=%d k=%d query %d:\n got %v\nwant %v",
							tag, class, workers, k, q, a, b)
					}
				}
			}
		}
		for _, x := range users {
			for _, y := range users {
				a, _ := got.Proximity(class, x, y)
				b, _ := want.Proximity(class, x, y)
				if a != b {
					t.Fatalf("%s: proximity(%d,%d) = %v, want %v", tag, x, y, a, b)
				}
			}
		}
	}
}

// TestApplyUpdateEqualsScratch is the tentpole property: for random delta
// sequences, the incrementally updated engine is byte-identical — every
// query, every proximity, every weight vector, every worker count — to an
// engine rebuilt from scratch on the final graph, both before and after
// compaction, for full and dual-stage trained classes alike.
func TestApplyUpdateEqualsScratch(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		eng, g := toyEngine(t)
		eng.Train("classmate", classmateExamples(g))
		if trial%2 == 0 {
			eng.TrainDualStage("classmate2", classmateExamples(g), 2)
		}
		for step := 0; step < 3; step++ {
			d := randomToyDelta(rng, eng.Graph().NumNodes(), fmt.Sprintf("t%d-s%d", trial, step))
			st, err := eng.ApplyUpdate(d)
			if err != nil {
				t.Fatal(err)
			}
			if st.Epoch != uint64(step+1) {
				t.Fatalf("epoch = %d, want %d", st.Epoch, step+1)
			}
			if eng.Epoch() != st.Epoch {
				t.Fatalf("Epoch() = %d, want %d", eng.Epoch(), st.Epoch)
			}
		}
		scratch := rebuildFromScratch(t, eng)
		assertEngineEquivalent(t, eng, scratch, fmt.Sprintf("trial %d (patched)", trial))
		if eng.Stats().PendingCompaction == 0 {
			t.Fatal("expected pending compaction after updates")
		}
		eng.Compact()
		if p := eng.Stats().PendingCompaction; p != 0 {
			t.Fatalf("pending after Compact = %d", p)
		}
		assertEngineEquivalent(t, eng, scratch, fmt.Sprintf("trial %d (compacted)", trial))
	}
}

// TestApplyUpdateLogTransform covers the transformed-count path: patched
// rows must be transformed exactly like built rows.
func TestApplyUpdateLogTransform(t *testing.T) {
	g := fixtures.Toy()
	opts := DefaultOptions()
	opts.Mining.MaxNodes, opts.Mining.MinSupport = 4, 1
	opts.Train.Restarts, opts.Train.MaxIters = 1, 50
	opts.LogTransform = true
	eng, err := NewEngine(g, "user", opts)
	if err != nil {
		t.Fatal(err)
	}
	eng.Train("classmate", classmateExamples(g))
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 2; step++ {
		if _, err := eng.ApplyUpdate(randomToyDelta(rng, eng.Graph().NumNodes(), fmt.Sprintf("lt-%d", step))); err != nil {
			t.Fatal(err)
		}
	}
	assertEngineEquivalent(t, eng, rebuildFromScratch(t, eng), "log-transform")
}

// TestApplyUpdateUntrained exercises the graph-only swap: no matched
// metagraphs, nothing to re-match, the epoch still advances and training
// afterwards sees the updated graph.
func TestApplyUpdateUntrained(t *testing.T) {
	eng, g := toyEngine(t)
	st, err := eng.ApplyUpdate(Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}},
		Edges: []Edge{{U: NodeID(g.NumNodes()), V: g.NodeByName("College A")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rematched != 0 || st.NodesAdded != 1 || st.EdgesAdded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if eng.Graph().NodeByName("Zoe") == InvalidNode {
		t.Fatal("new node not visible")
	}
	eng.Train("classmate", classmateExamples(g))
	if _, err := eng.Query("classmate", eng.Graph().NodeByName("Zoe"), 3); err != nil {
		t.Fatal(err)
	}
}

// TestApplyUpdateErrors verifies rejected deltas leave the engine
// untouched.
func TestApplyUpdateErrors(t *testing.T) {
	eng, _ := toyEngine(t)
	before := eng.Stats()
	if _, err := eng.ApplyUpdate(Delta{Nodes: []DeltaNode{{Type: "alien", Value: "x"}}}); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := eng.ApplyUpdate(Delta{Edges: []Edge{{U: 0, V: 10_000}}}); err == nil {
		t.Fatal("dangling edge accepted")
	}
	if after := eng.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("failed update changed state: %+v vs %+v", before, after)
	}
}

// TestQueriesServeDuringUpdate hammers Query/QueryBatch/Proximity from
// many goroutines while updates and compactions swap epochs underneath.
// Every observed ranking must equal the pre-update or the post-update
// reference — an epoch is atomic, a mix of the two is a bug. Run with
// -race (make test) this also proves the swap is data-race free.
func TestQueriesServeDuringUpdate(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	probes := g.NodesOfType(g.Types().ID("user"))

	refOld := make(map[NodeID][]Ranked, len(probes))
	for _, q := range probes {
		r, err := eng.Query("classmate", q, 5)
		if err != nil {
			t.Fatal(err)
		}
		refOld[q] = r
	}

	const queriers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	observed := make([]map[NodeID][][]Ranked, queriers)
	for w := 0; w < queriers; w++ {
		observed[w] = make(map[NodeID][][]Ranked)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := probes[i%len(probes)]
				r, err := eng.Query("classmate", q, 5)
				if err != nil {
					t.Error(err)
					return
				}
				observed[w][q] = append(observed[w][q], r)
				if batch, err := eng.QueryBatch("classmate", probes, 5); err != nil || len(batch) != len(probes) {
					t.Errorf("batch: %v (%d results)", err, len(batch))
					return
				}
				if _, err := eng.Proximity("classmate", probes[0], q); err != nil {
					t.Error(err)
					return
				}
				_ = eng.Stats()
			}
		}(w)
	}

	d := Delta{
		Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}, {Type: "school", Value: "College Z"}},
		Edges: []Edge{
			{U: NodeID(g.NumNodes()), V: NodeID(g.NumNodes() + 1)},
			{U: g.NodeByName("Kate"), V: NodeID(g.NumNodes() + 1)},
			{U: g.NodeByName("Alice"), V: g.NodeByName("College B")},
		},
	}
	if _, err := eng.ApplyUpdate(d); err != nil {
		t.Fatal(err)
	}
	eng.Compact()
	close(stop)
	wg.Wait()

	refNew := make(map[NodeID][]Ranked, len(probes))
	for _, q := range probes {
		r, err := eng.Query("classmate", q, 5)
		if err != nil {
			t.Fatal(err)
		}
		refNew[q] = r
	}
	for w := range observed {
		for q, results := range observed[w] {
			for _, r := range results {
				if !reflect.DeepEqual(r, refOld[q]) && !reflect.DeepEqual(r, refNew[q]) {
					t.Fatalf("query %d observed a ranking matching neither epoch:\n got %v\n old %v\n new %v",
						q, r, refOld[q], refNew[q])
				}
			}
		}
	}
}

// TestSnapshotRoundTripAfterUpdates: a mutated engine must round-trip
// through Save/LoadEngine — same epoch, same answers, nothing pending.
func TestSnapshotRoundTripAfterUpdates(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 2; step++ {
		if _, err := eng.ApplyUpdate(randomToyDelta(rng, eng.Graph().NumNodes(), fmt.Sprintf("rt-%d", step))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != eng.Epoch() {
		t.Fatalf("loaded epoch %d, want %d", loaded.Epoch(), eng.Epoch())
	}
	if p := loaded.Stats().PendingCompaction; p != 0 {
		t.Fatalf("loaded engine pending = %d", p)
	}

	// Saving twice yields identical bytes (epoch included). Checked before
	// assertEngineEquivalent, which retunes Options.Workers — a field the
	// snapshot intentionally carries.
	var buf2 bytes.Buffer
	if err := eng.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot bytes not deterministic")
	}
	assertEngineEquivalent(t, loaded, eng, "snapshot round-trip")
}

// QueryBatch edge cases: empty batch, untrained class, more workers than
// queries, and the k <= 0 "full ranking" convention.
func TestQueryBatchEdgeCases(t *testing.T) {
	eng, g := toyEngine(t)

	if _, err := eng.QueryBatch("classmate", []NodeID{0}, 5); err == nil {
		t.Fatal("untrained class must error")
	}
	eng.Train("classmate", classmateExamples(g))

	out, err := eng.QueryBatch("classmate", nil, 5)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(out))
	}

	// More workers than queries: the fan-out clamps to len(qs) and the
	// results still align with qs and match single queries.
	eng.SetWorkers(16)
	qs := []NodeID{g.NodeByName("Kate"), g.NodeByName("Bob")}
	out, err = eng.QueryBatch("classmate", qs, 3)
	if err != nil || len(out) != len(qs) {
		t.Fatalf("clamped batch: %v, %d results", err, len(out))
	}
	for i, q := range qs {
		want, _ := eng.Query("classmate", q, 3)
		if !reflect.DeepEqual(out[i], want) {
			t.Fatalf("batch[%d] = %v, want %v", i, out[i], want)
		}
	}

	// k <= 0 returns every candidate, like Query.
	for _, k := range []int{0, -1} {
		out, err = eng.QueryBatch("classmate", qs, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range qs {
			want, _ := eng.Query("classmate", q, 0)
			if !reflect.DeepEqual(out[i], want) {
				t.Fatalf("k=%d batch[%d] mismatch", k, i)
			}
		}
	}
}

// TestApplyUpdateBatchMatchesOneAtATime is the coalesced-apply property
// behind the follower's batched catch-up: a contiguous run of logged
// deltas applied as ONE ApplyUpdateBatchAt call (concatenated delta,
// epoch advanced once per covered record) must leave the engine
// byte-identical — snapshot bytes, epoch, LSN, every query at every
// worker count — to applying the records one ApplyUpdateAt at a time.
func TestApplyUpdateBatchMatchesOneAtATime(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		base, g := toyEngine(t)
		base.Train("classmate", classmateExamples(g))
		var seed bytes.Buffer
		if err := base.Save(&seed); err != nil {
			t.Fatal(err)
		}
		oneAtATime, err := LoadEngine(bytes.NewReader(seed.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		coalesced, err := LoadEngine(bytes.NewReader(seed.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		// A random record stream, chunked at random points: each chunk is
		// applied record-by-record on one engine and as a single coalesced
		// batch on the other.
		lsn := uint64(0)
		for chunk := 0; chunk < 3; chunk++ {
			records := 1 + rng.Intn(4)
			var merged Delta
			nodes := oneAtATime.Graph().NumNodes()
			for r := 0; r < records; r++ {
				d := randomToyDelta(rng, nodes, fmt.Sprintf("b%d-c%d-r%d", trial, chunk, r))
				lsn++
				if _, err := oneAtATime.ApplyUpdateAt(d, lsn); err != nil {
					t.Fatal(err)
				}
				merged.Nodes = append(merged.Nodes, d.Nodes...)
				merged.Edges = append(merged.Edges, d.Edges...)
				nodes += len(d.Nodes)
			}
			if _, err := coalesced.ApplyUpdateBatchAt(merged, lsn, records); err != nil {
				t.Fatal(err)
			}
		}

		if coalesced.Epoch() != oneAtATime.Epoch() || coalesced.LSN() != oneAtATime.LSN() {
			t.Fatalf("coalesced at epoch %d LSN %d, one-at-a-time at epoch %d LSN %d",
				coalesced.Epoch(), coalesced.LSN(), oneAtATime.Epoch(), oneAtATime.LSN())
		}
		assertEngineEquivalent(t, coalesced, oneAtATime, fmt.Sprintf("trial %d (patched)", trial))
		oneAtATime.Compact()
		coalesced.Compact()
		var a, b bytes.Buffer
		if err := oneAtATime.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := coalesced.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("trial %d: coalesced snapshot differs from one-at-a-time snapshot", trial)
		}
	}
}

// TestApplyUpdateBatchValidation pins the argument contract: a batch
// must cover at least one record, the whole covered range must lie
// beyond the engine's LSN, and a failed batch leaves the engine
// unchanged.
func TestApplyUpdateBatchValidation(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	d := Delta{Nodes: []DeltaNode{{Type: "user", Value: "bv-1"}}}
	if _, err := eng.ApplyUpdateBatchAt(d, 1, 0); err == nil {
		t.Fatal("records=0 accepted")
	}
	if _, err := eng.ApplyUpdateBatchAt(d, 1, 2); err == nil {
		t.Fatal("2 records ending at LSN 1 accepted")
	}
	if _, err := eng.ApplyUpdateBatchAt(d, 2, 2); err != nil {
		t.Fatalf("records 1..2: %v", err)
	}
	if eng.LSN() != 2 || eng.Epoch() != 2 {
		t.Fatalf("LSN %d epoch %d, want 2/2", eng.LSN(), eng.Epoch())
	}
	// Range overlapping the applied prefix: records 2..3 collide with the
	// engine's LSN 2.
	if _, err := eng.ApplyUpdateBatchAt(d, 3, 2); err == nil {
		t.Fatal("overlapping batch accepted")
	}
	if eng.LSN() != 2 || eng.Epoch() != 2 {
		t.Fatalf("failed batch mutated the engine: LSN %d epoch %d", eng.LSN(), eng.Epoch())
	}
}
