module repro

go 1.24

// The one tracked dependency: the go/analysis framework behind
// cmd/semproxlint. Vendored (see vendor/) so builds never touch the
// network; the pseudo-version pins the exact x/tools commit the vendor
// tree was taken from, and `go build`'s inconsistent-vendoring check
// fails the build if vendor/modules.txt ever drifts from this require.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
