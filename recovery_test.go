package semprox

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/wal"
)

// lastWALSegment returns the newest segment file of a WAL directory.
func lastWALSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no wal segments in %s: %v", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestCrashRecoveryEqualsUninterrupted is the acceptance property of the
// durability subsystem: a primary that is killed after N random durable
// updates — no clean shutdown, snapshot arbitrarily stale, a torn record
// on the log tail — recovers (snapshot + WAL replay) to an engine whose
// every query, proximity, weight vector and stat is byte-identical to the
// uninterrupted engine that applied the same deltas, at multiple worker
// counts.
func TestCrashRecoveryEqualsUninterrupted(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(900 + trial)))
			eng, g := toyEngine(t)
			eng.Train("classmate", classmateExamples(g))
			if trial%2 == 1 {
				eng.TrainDualStage("classmate2", classmateExamples(g), 2)
			}

			dir := t.TempDir()
			w, err := wal.Open(dir, wal.Options{BaseLSN: eng.LSN(), SegmentBytes: 256})
			if err != nil {
				t.Fatal(err)
			}

			// The snapshot is taken mid-sequence (after snapAt of the N
			// updates), so recovery must combine it with the WAL suffix.
			const N = 6
			snapAt := 1 + trial%3
			var snap bytes.Buffer
			if err := eng.Save(&snap); err != nil {
				t.Fatal(err)
			}
			for step := 1; step <= N; step++ {
				d := randomToyDelta(rng, eng.Graph().NumNodes(), fmt.Sprintf("cr%d-%d", trial, step))
				// The primary's write path: durable first, then applied at
				// the LSN the log assigned.
				lsn, err := w.Append(d)
				if err != nil {
					t.Fatal(err)
				}
				st, err := eng.ApplyUpdateAt(d, lsn)
				if err != nil {
					t.Fatal(err)
				}
				if st.LSN != lsn || eng.LSN() != lsn {
					t.Fatalf("step %d: stats LSN %d, engine LSN %d, want %d", step, st.LSN, eng.LSN(), lsn)
				}
				if step == snapAt {
					snap.Reset()
					if err := eng.Save(&snap); err != nil {
						t.Fatal(err)
					}
				}
			}

			// Crash: the WAL handle is abandoned (never Closed) and the
			// last segment gains a torn half-record, exactly what dying
			// mid-write leaves behind.
			f, err := os.OpenFile(lastWALSegment(t, dir), os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad}); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Recovery: snapshot, then the log tail beyond it.
			rec, err := LoadEngine(bytes.NewReader(snap.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if rec.LSN() != uint64(snapAt) {
				t.Fatalf("snapshot LSN %d, want %d", rec.LSN(), snapAt)
			}
			w2, err := wal.Open(dir, wal.Options{SegmentBytes: 256})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			applied, skipped, err := ReplayWAL(rec, w2)
			if err != nil {
				t.Fatal(err)
			}
			if applied != N-snapAt || skipped != 0 {
				t.Fatalf("replayed %d records (skipped %d), want %d (0)", applied, skipped, N-snapAt)
			}
			if rec.LSN() != eng.LSN() || rec.Epoch() != eng.Epoch() {
				t.Fatalf("recovered at LSN %d epoch %d, primary at LSN %d epoch %d",
					rec.LSN(), rec.Epoch(), eng.LSN(), eng.Epoch())
			}

			// Byte-identical serving state, across worker counts.
			assertEngineEquivalent(t, rec, eng, fmt.Sprintf("crash trial %d", trial))

			// Identical stats and identical snapshot bytes once both sides
			// fold their overlays.
			eng.Compact()
			rec.Compact()
			if got, want := rec.Stats(), eng.Stats(); !reflect.DeepEqual(got, want) {
				t.Fatalf("stats diverged:\n got %+v\nwant %+v", got, want)
			}
			var b1, b2 bytes.Buffer
			if err := eng.Save(&b1); err != nil {
				t.Fatal(err)
			}
			if err := rec.Save(&b2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("recovered engine snapshot differs from uninterrupted engine snapshot")
			}

			// A second crash-recovery from the post-recovery state keeps
			// working: the reopened log accepts appends past the tail.
			d := randomToyDelta(rng, rec.Graph().NumNodes(), fmt.Sprintf("cr%d-post", trial))
			lsn, err := w2.Append(d)
			if err != nil {
				t.Fatal(err)
			}
			if lsn != uint64(N+1) {
				t.Fatalf("post-recovery append at LSN %d, want %d", lsn, N+1)
			}
			if _, err := rec.ApplyUpdateAt(d, lsn); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestReplayWALRejectsTruncatedLog: recovering a snapshot older than the
// log's truncation horizon must fail loudly — the missing records cannot
// be reconstructed.
func TestReplayWALRejectsTruncatedLog(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	var oldSnap bytes.Buffer
	if err := eng.Save(&oldSnap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rng := rand.New(rand.NewSource(3))
	for step := 1; step <= 6; step++ {
		d := randomToyDelta(rng, eng.Graph().NumNodes(), fmt.Sprintf("tr-%d", step))
		lsn, err := w.Append(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ApplyUpdateAt(d, lsn); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh snapshot at LSN 6 makes the prefix redundant; drop it.
	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	if w.FirstLSN() <= 1 {
		t.Skip("truncation kept the full log (single segment); nothing to assert")
	}
	old, err := LoadEngine(bytes.NewReader(oldSnap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReplayWAL(old, w); err == nil {
		t.Fatal("replaying a truncated log over a too-old snapshot succeeded")
	}
}

// TestReplayWALSkipsRejectedRecord: a logged record the engine rejects
// (durable but never applied — the primary alarms, records the skip in
// the log's skip list, and advances past it via AdvanceLSN) must not
// brick recovery. Replay reproduces the recorded skip exactly as the
// primary made it, applies everything around it, and the recovered
// engine matches the primary byte-for-byte. An unrecorded rejection, by
// contrast, must abort replay — that is the mispaired-directory guard.
func TestReplayWALSkipsRejectedRecord(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}

	good1 := Delta{Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}}}
	bad := Delta{Nodes: []DeltaNode{{Type: "nosuchtype", Value: "ghost"}}}
	good2 := Delta{Nodes: []DeltaNode{{Type: "user", Value: "Max"}}}

	// The primary's write path, including the rejected-after-append case:
	// the bad record is durable, the engine refuses it, and the primary
	// records the skip durably before advancing its LSN past the record.
	for _, d := range []Delta{good1, bad, good2} {
		lsn, err := w.Append(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.ApplyUpdateAt(d, lsn); err != nil {
			if err := w.RecordSkip(lsn); err != nil {
				t.Fatal(err)
			}
			eng.AdvanceLSN(lsn)
		}
	}
	if eng.LSN() != 3 {
		t.Fatalf("primary LSN = %d, want 3", eng.LSN())
	}
	if eng.Graph().NodeByName("ghost") != InvalidNode {
		t.Fatal("rejected delta reached the primary's graph")
	}
	// AdvanceLSN never regresses.
	eng.AdvanceLSN(2)
	if eng.LSN() != 3 {
		t.Fatalf("AdvanceLSN(2) regressed LSN to %d", eng.LSN())
	}

	// Crash: reopen the log from disk — the skip list must survive the
	// restart, or the reboot below would refuse the record.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, err = wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !w.Skipped(2) || w.Skipped(1) || w.Skipped(3) {
		t.Fatalf("reloaded skip list wrong: skipped(1,2,3) = %v,%v,%v",
			w.Skipped(1), w.Skipped(2), w.Skipped(3))
	}

	// Recovery from the pre-update snapshot replays the whole log and
	// lands on the primary's state, skipped record and all.
	rec, err := LoadEngine(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	applied, skipped, err := ReplayWAL(rec, w)
	if err != nil {
		t.Fatalf("replay over a recorded skip failed: %v", err)
	}
	if applied != 2 || skipped != 1 {
		t.Fatalf("replayed %d records, skipped %d, want 2 applied 1 skipped", applied, skipped)
	}
	if rec.LSN() != 3 {
		t.Fatalf("recovered LSN = %d, want 3", rec.LSN())
	}
	if rec.Graph().NodeByName("ghost") != InvalidNode {
		t.Fatal("rejected record applied during replay")
	}
	if rec.Graph().NodeByName("Zoe") == InvalidNode || rec.Graph().NodeByName("Max") == InvalidNode {
		t.Fatal("valid records lost during replay")
	}
	eng.Compact()
	rec.Compact()
	var b1, b2 bytes.Buffer
	if err := eng.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := rec.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("recovered engine differs from the primary that skipped the record")
	}
}

// TestReplayWALRejectsUnrecordedRejection: a logged record the engine
// rejects that is NOT in the skip list means the log does not belong to
// the snapshot — replay must abort instead of silently diverging.
func TestReplayWALRejectsUnrecordedRejection(t *testing.T) {
	eng, g := toyEngine(t)
	eng.Train("classmate", classmateExamples(g))

	w, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(Delta{Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(Delta{Nodes: []DeltaNode{{Type: "nosuchtype", Value: "ghost"}}}); err != nil {
		t.Fatal(err)
	}

	if _, _, err := ReplayWAL(eng, w); err == nil {
		t.Fatal("replaying an unrecorded rejected record succeeded")
	}
	// The valid prefix applied before the abort; nothing from the
	// rejected record leaked in.
	if eng.LSN() != 1 || eng.Graph().NodeByName("ghost") != InvalidNode {
		t.Fatalf("after aborted replay: LSN %d (want 1), ghost present %v",
			eng.LSN(), eng.Graph().NodeByName("ghost") != InvalidNode)
	}
}

// TestApplyUpdateAtValidation pins the LSN contract: zero and
// non-advancing LSNs are rejected without touching the engine.
func TestApplyUpdateAtValidation(t *testing.T) {
	eng, _ := toyEngine(t)
	d := Delta{Nodes: []DeltaNode{{Type: "user", Value: "Zoe"}}}
	if _, err := eng.ApplyUpdateAt(d, 0); err == nil {
		t.Fatal("LSN 0 accepted")
	}
	if _, err := eng.ApplyUpdateAt(d, 5); err != nil {
		t.Fatal(err)
	}
	if eng.LSN() != 5 {
		t.Fatalf("LSN = %d, want 5", eng.LSN())
	}
	if _, err := eng.ApplyUpdateAt(d, 5); err == nil {
		t.Fatal("stale LSN accepted")
	}
	if _, err := eng.ApplyUpdateAt(d, 3); err == nil {
		t.Fatal("regressing LSN accepted")
	}
	// Plain ApplyUpdate keeps advancing from wherever the LSN is.
	st, err := eng.ApplyUpdate(Delta{Nodes: []DeltaNode{{Type: "user", Value: "Max"}}})
	if err != nil {
		t.Fatal(err)
	}
	if st.LSN != 6 {
		t.Fatalf("ApplyUpdate LSN = %d, want 6", st.LSN)
	}
}
